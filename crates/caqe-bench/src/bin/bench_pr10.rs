//! Warm-start benchmark for PR 10 (`BENCH_PR10.json`): prices the
//! cold-restart rebuild gap that the on-disk plan snapshot (DESIGN.md §19)
//! closes, and proves the warm arm is *observationally free* in the same
//! artifact.
//!
//! Two arms over the same inputs, one JSON object:
//!
//! * **Cold** — `PreparedPlan::build` + per-group memoization from raw
//!   tables, timed best-of-`--reps`; the resulting plan is written to disk
//!   through the crash-safe snapshot path.
//! * **Warm** — `PreparedPlan::load` parses, checksums and revalidates the
//!   snapshot against the live tables, timed best-of-`--reps`.
//!
//! The headline `warm_start_speedup` is the exact ratio of the two
//! committed wall times. The honesty witness: both arms drive a full
//! traced engine run and the artifact commits the FNV-1a digest of each
//! trace — `restore_identical` is true only if the warm trace is
//! byte-identical to the cold one.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr10 -- [--n <rows>]
//!     [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_bench::ExperimentConfig;
use caqe_core::{
    try_run_engine_online_prepared, EngineConfig, EventStream, ExecConfig, PreparedPlan,
    SchedulingPolicy, Workload,
};
use caqe_data::{Distribution, Table};
use caqe_trace::{to_jsonl, RecordingSink};
use std::num::NonZeroUsize;
use std::time::Instant;

/// FNV-1a over a trace's JSONL bytes: the committed witness behind the
/// `restore_identical` claim.
fn trace_digest(jsonl: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in jsonl.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Builds and memoizes the plan exactly as `CaqeServer::build_plan` does
/// for a single-shot workload.
fn cold_build(
    r: &Table,
    t: &Table,
    w: &Workload,
    exec: &ExecConfig,
    eng: &EngineConfig,
) -> PreparedPlan {
    let needs_dg =
        eng.progressive_emission || eng.dominance_discard || eng.policy != SchedulingPolicy::Fifo;
    let mut plan = PreparedPlan::build(r, t, exec);
    plan.memoize(w, exec, eng.coarse_pruning, needs_dg, false);
    plan
}

/// One traced engine run, optionally warm-started, serialized to JSONL.
fn run_jsonl(
    r: &Table,
    t: &Table,
    w: &Workload,
    exec: &ExecConfig,
    eng: &EngineConfig,
    plan: Option<&PreparedPlan>,
) -> String {
    let mut sink = RecordingSink::new();
    let out = try_run_engine_online_prepared(
        "CAQE",
        r,
        t,
        w,
        &EventStream::empty(),
        exec,
        eng,
        0,
        plan,
        &mut sink,
    );
    match out {
        Ok(out) if out.total_results() > 0 => {}
        Ok(_) => {
            eprintln!("degenerate workload: no results");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("engine run failed: {e}");
            std::process::exit(1);
        }
    }
    to_jsonl(sink.events())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 3000);
    let cells: usize = cli_parse(&args, "--cells", 32);
    let reps: usize = cli_parse(&args, "--reps", 3).max(1);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());

    // Anti-correlated attributes maximize skyline sizes, which is exactly
    // the work the memoized plan lets a restart skip: the cold arm pays
    // for dominance compute, the warm arm only pays for parsing.
    let mut cfg = ExperimentConfig::new(Distribution::Anticorrelated, 2);
    cfg.n = n;
    cfg.cells_per_table = cells;
    let (r, t) = cfg.tables();
    let w = cfg.workload();
    let exec = cfg.exec();
    let eng = EngineConfig::caqe();

    // Cold arm: full partition + per-group build from raw tables.
    let mut cold_secs = f64::INFINITY;
    let mut plan = None;
    for _ in 0..reps {
        let start = Instant::now();
        let built = cold_build(&r, &t, &w, &exec, &eng);
        cold_secs = cold_secs.min(start.elapsed().as_secs_f64());
        plan = Some(built);
    }
    let Some(plan) = plan else {
        unreachable!("reps >= 1")
    };

    // Persist through the crash-safe path, then time the warm arm: parse,
    // checksum, staleness fingerprints, structural revalidation.
    let plan_path =
        std::env::temp_dir().join(format!("bench_pr10_{}.caqeplan", std::process::id()));
    if let Err(e) = plan.save(&plan_path) {
        eprintln!("plan save failed: {e}");
        std::process::exit(1);
    }
    let plan_bytes = std::fs::metadata(&plan_path).map(|m| m.len()).unwrap_or(0);
    let mut warm_secs = f64::INFINITY;
    let mut restored = None;
    for _ in 0..reps {
        let start = Instant::now();
        match PreparedPlan::load(&plan_path, &r, &t, &exec) {
            Ok(p) => {
                warm_secs = warm_secs.min(start.elapsed().as_secs_f64());
                restored = Some(p);
            }
            Err(e) => {
                eprintln!("plan load failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let _ = std::fs::remove_file(&plan_path);
    let Some(restored) = restored else {
        unreachable!("reps >= 1")
    };

    // Honesty: the warm run must be byte-identical to the cold run.
    let cold_trace = run_jsonl(&r, &t, &w, &exec, &eng, None);
    let warm_trace = run_jsonl(&r, &t, &w, &exec, &eng, Some(&restored));
    let restore_identical = cold_trace == warm_trace;
    if !restore_identical {
        eprintln!("warm-start trace diverged from the cold run — the memo replay is broken");
        std::process::exit(1);
    }

    let speedup = cold_secs / warm_secs;
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr10")
        .uint("n", n as u64)
        .uint("queries", w.queries().len() as u64)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", "warm-start")
        .number("cold_build_wall_seconds", cold_secs)
        .number("warm_load_wall_seconds", warm_secs)
        .number("warm_start_speedup", speedup)
        .uint("plan_file_bytes", plan_bytes)
        .uint("plan_groups", plan.memos.len() as u64)
        .bool("restore_identical", restore_identical)
        .string(
            "cold_trace_digest",
            &format!("{:016x}", trace_digest(&cold_trace)),
        )
        .string(
            "warm_trace_digest",
            &format!("{:016x}", trace_digest(&warm_trace)),
        );
    let json = obj.finish();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "warm-start: cold build {cold_secs:.4}s vs warm load {warm_secs:.4}s — {speedup:.1}x; \
         {} groups, {plan_bytes} bytes on disk, traces identical ({out_path})",
        plan.memos.len()
    );
}
