//! Text dashboard and reconciliation tool for metrics snapshots produced
//! with `--metrics <dir>` (DESIGN.md §16).
//!
//! ```text
//! cargo run --release -p caqe-bench --bin obs_report -- --metrics <dir>
//!     [--reconcile <trace-dir>]
//! ```
//!
//! Per `*.metrics.json` snapshot found (recursively): the run's counter
//! totals, the phase profile (virtual-tick and dominance-charge breakdown),
//! kernel-dispatch split, per-query satisfaction and SLO at-risk state.
//! Snapshots that dropped non-finite gauge values carry a visible warning,
//! like `trace_report` does for the JSON exporter's non-finite→null drops.
//!
//! With `--reconcile <trace-dir>`, every snapshot is paired with the trace
//! stream of the same label (`<label>.jsonl` at the same relative path)
//! and every event-derived counter is cross-validated against counts
//! derived independently from the trace: emissions (total and per query),
//! decisions, spans per kind, retries, quarantines, sheds, admissions,
//! departures, estimate audits, faults and ingestion audits — plus the
//! engine invariants `decisions = region spans + retries + quarantines`
//! and `stats.tuples_emitted = emission events`. Any mismatch exits
//! non-zero, so CI can gate on metrics/trace agreement.

use caqe_bench::json::{parse, JsonValue};
use caqe_bench::report::cli_arg;
use caqe_obs::names;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_snapshots(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_snapshots(&p, out);
        } else if p
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".metrics.json"))
        {
            out.push(p);
        }
    }
}

/// A parsed snapshot: counters, gauges and the drop counter.
struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    dropped_non_finite: u64,
}

fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let v = parse(text.trim()).map_err(|e| format!("bad JSON: {e}"))?;
    let mut counters = BTreeMap::new();
    if let JsonValue::Object(map) = &v["counters"] {
        for (k, val) in map {
            counters.insert(k.clone(), val.as_f64().unwrap_or(0.0) as u64);
        }
    }
    let mut gauges = BTreeMap::new();
    if let JsonValue::Object(map) = &v["gauges"] {
        for (k, val) in map {
            gauges.insert(k.clone(), val.as_f64().unwrap_or(f64::NAN));
        }
    }
    Ok(Snapshot {
        counters,
        gauges,
        dropped_non_finite: v["dropped_non_finite"].as_f64().unwrap_or(0.0) as u64,
    })
}

/// Counts derived independently from a `<label>.jsonl` trace stream.
#[derive(Default)]
struct TraceCounts {
    /// `ev` kind -> occurrences.
    events: BTreeMap<String, u64>,
    /// span kind -> occurrences.
    spans: BTreeMap<String, u64>,
    /// query id -> emission count.
    per_query: BTreeMap<u64, u64>,
}

fn trace_counts(path: &Path) -> Result<TraceCounts, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let mut c = TraceCounts::default();
    for (lineno, line) in text.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ev = v["ev"].as_str().unwrap_or("?").to_string();
        *c.events.entry(ev.clone()).or_insert(0) += 1;
        match ev.as_str() {
            "span" => {
                let kind = v["kind"].as_str().unwrap_or("?").to_string();
                *c.spans.entry(kind).or_insert(0) += 1;
            }
            "emit" => {
                let q = v["query"].as_f64().unwrap_or(-1.0) as u64;
                *c.per_query.entry(q).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    Ok(c)
}

/// One reconciliation claim: metric value vs trace-derived value.
fn claim(problems: &mut Vec<String>, what: &str, metric: u64, trace: u64) {
    if metric != trace {
        problems.push(format!("{what}: metric says {metric}, trace says {trace}"));
    }
}

/// Cross-validates one snapshot against its trace stream.
fn reconcile(snap: &Snapshot, tc: &TraceCounts) -> Vec<String> {
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let event = |kind: &str| tc.events.get(kind).copied().unwrap_or(0);
    let mut problems = Vec::new();
    for (name, kind) in [
        (names::RUNS, "meta"),
        (names::EMISSIONS, "emit"),
        (names::DECISIONS, "decision"),
        (names::RETRIES, "retry"),
        (names::QUARANTINES, "quarantine"),
        (names::SHEDS, "shed"),
        (names::ADMITS, "admit"),
        (names::DEPARTS, "depart"),
        (names::ESTIMATE_AUDITS, "estimate"),
        (names::FAULTS, "fault"),
        (names::INGEST_AUDITS, "ingest"),
        // Serving-layer events (wall-clock front door, DESIGN.md §18):
        // every reject/shutdown/restore in the server trace must be
        // counted, and each shutdown writes exactly one snapshot.
        (names::SERVE_REJECTS, "reject"),
        (names::SERVE_SHUTDOWNS, "shutdown"),
        (names::SERVE_SNAPSHOTS, "shutdown"),
        (names::SERVE_RESTORES, "restore"),
    ] {
        claim(&mut problems, name, counter(name), event(kind));
    }
    for (kind, n) in &tc.spans {
        claim(
            &mut problems,
            &format!("{}{{kind={kind}}}", names::SPANS),
            counter(&caqe_obs::key(names::SPANS, &[("kind", kind)])),
            *n,
        );
    }
    for (q, n) in &tc.per_query {
        let label = q.to_string();
        claim(
            &mut problems,
            &format!("{}{{query={q}}}", names::EMISSIONS),
            counter(&caqe_obs::key(names::EMISSIONS, &[("query", &label)])),
            *n,
        );
    }
    // Cross-source: end-of-run Stats must agree with the event stream.
    for (stat, kind) in [
        ("caqe_stats_tuples_emitted", "emit"),
        ("caqe_stats_region_retries", "retry"),
        ("caqe_stats_regions_quarantined", "quarantine"),
        ("caqe_stats_regions_shed", "shed"),
    ] {
        claim(&mut problems, stat, counter(stat), event(kind));
    }
    // Prune-layer invariants (within-snapshot: signature screening is
    // deliberately invisible to the trace stream, so the claims relate the
    // diagnostic counters to each other).
    let skipped = counter("caqe_stats_sig_partitions_skipped");
    let rejected = counter("caqe_stats_sig_partitions_rejected");
    let builds = counter("caqe_stats_sig_builds");
    let hits = counter("caqe_stats_presort_cache_hits");
    let misses = counter("caqe_stats_presort_cache_misses");
    if builds == 0 && (skipped + rejected + hits) > 0 {
        problems.push(format!(
            "prune counters without signature builds: skipped {skipped}, \
             rejected {rejected}, cache hits {hits}, builds 0"
        ));
    }
    if hits > 0 && misses == 0 {
        problems.push(format!(
            "presort cache hits ({hits}) without a single miss — nothing \
             could have populated the cache"
        ));
    }
    if rejected > counter("caqe_stats_dom_comparisons") {
        problems.push(format!(
            "sig_partitions_rejected ({rejected}) exceeds dom_comparisons \
             ({}) — rejections must each carry at least one charged \
             comparison",
            counter("caqe_stats_dom_comparisons")
        ));
    }
    // Engine invariants — only meaningful for strategies that schedule
    // regions (baseline traces carry no decisions).
    if event("decision") > 0 {
        let region_spans = tc.spans.get("region").copied().unwrap_or(0);
        claim(
            &mut problems,
            "decisions = region spans + retries + quarantines",
            counter(names::DECISIONS),
            region_spans + event("retry") + event("quarantine"),
        );
        claim(
            &mut problems,
            "caqe_stats_regions_processed = region spans",
            counter("caqe_stats_regions_processed"),
            region_spans,
        );
    }
    problems
}

/// Extracts the `query="N"` label value from a metric key.
fn query_of(key: &str) -> Option<&str> {
    key.split("query=\"").nth(1)?.split('"').next()
}

fn dashboard(label: &str, snap: &Snapshot) {
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!("== {label} ==");
    println!(
        "  runs {}  decisions {}  emissions {}  estimate audits {}",
        counter(names::RUNS),
        counter(names::DECISIONS),
        counter(names::EMISSIONS),
        counter(names::ESTIMATE_AUDITS),
    );
    let degradation = [
        ("faults", counter(names::FAULTS)),
        ("retries", counter(names::RETRIES)),
        ("quarantined", counter(names::QUARANTINES)),
        ("shed", counter(names::SHEDS)),
        ("admits", counter(names::ADMITS)),
        ("departs", counter(names::DEPARTS)),
    ];
    if degradation.iter().any(|(_, v)| *v > 0) {
        let parts: Vec<String> = degradation
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("  lifecycle: {}", parts.join("  "));
    }
    let serving = [
        ("submits", counter(names::SERVE_SUBMITS)),
        ("rejects", counter(names::SERVE_REJECTS)),
        ("epochs", counter(names::SERVE_EPOCHS)),
        ("snapshots", counter(names::SERVE_SNAPSHOTS)),
        ("restores", counter(names::SERVE_RESTORES)),
        ("expired", counter(names::SERVE_DEADLINE_EXPIRED)),
    ];
    if serving.iter().any(|(_, v)| *v > 0) {
        let parts: Vec<String> = serving
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!("  serving: {}", parts.join("  "));
    }
    let phases = ["build", "probe", "insert", "emit"];
    let ticks: Vec<u64> = phases
        .iter()
        .map(|p| counter(&caqe_obs::key(names::PHASE_TICKS, &[("phase", p)])))
        .collect();
    let total: u64 = ticks.iter().sum();
    if total > 0 {
        let parts: Vec<String> = phases
            .iter()
            .zip(&ticks)
            .map(|(p, t)| format!("{p} {t} ({:.0}%)", 100.0 * *t as f64 / total as f64))
            .collect();
        println!("  phase ticks: {}", parts.join("  "));
        let cmp_parts: Vec<String> = ["build", "insert", "emit"]
            .iter()
            .map(|p| {
                format!(
                    "{p} {}",
                    counter(&caqe_obs::key(names::PHASE_DOM_CMPS, &[("phase", p)]))
                )
            })
            .collect();
        println!("  phase dominance charges: {}", cmp_parts.join("  "));
    }
    let block = counter(&caqe_obs::key(names::KERNEL_DISPATCH, &[("path", "block")]));
    let scalar = counter(&caqe_obs::key(
        names::KERNEL_DISPATCH,
        &[("path", "scalar")],
    ));
    if block + scalar > 0 {
        println!("  kernel dispatch: block {block}  scalar {scalar}");
    }
    let prune: Vec<(&str, u64)> = [
        ("skipped", "partitions_skipped"),
        ("rejected", "partitions_rejected"),
        ("sig builds", "sig_builds"),
        ("cache hits", "cache_hits"),
        ("cache misses", "cache_misses"),
    ]
    .iter()
    .map(|(show, kind)| {
        (
            *show,
            counter(&caqe_obs::key(names::PRUNE_EVENTS, &[("kind", kind)])),
        )
    })
    .collect();
    if prune.iter().any(|(_, v)| *v > 0) {
        let parts: Vec<String> = prune.iter().map(|(k, v)| format!("{k} {v}")).collect();
        println!("  prune layer: {}", parts.join("  "));
    }
    // Per-query satisfaction + SLO state, in query order.
    let mut sats: Vec<(u64, f64)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with(names::SATISFACTION) && !k.starts_with(names::SLO_AT_RISK))
        .filter_map(|(k, v)| Some((query_of(k)?.parse::<u64>().ok()?, *v)))
        .collect();
    sats.sort_unstable_by_key(|(q, _)| *q);
    if !sats.is_empty() {
        let parts: Vec<String> = sats.iter().map(|(q, v)| format!("q{q}={v:.3}")).collect();
        println!("  satisfaction: {}", parts.join("  "));
    }
    let at_risk: Vec<String> = snap
        .gauges
        .iter()
        .filter(|(k, v)| k.starts_with(names::SLO_AT_RISK) && **v == 1.0)
        .filter_map(|(k, _)| Some(format!("q{}", query_of(k)?)))
        .collect();
    let transitions = counter(names::SLO_TRANSITIONS);
    if !at_risk.is_empty() || transitions > 0 {
        println!(
            "  SLO: at risk [{}], {transitions} at-risk transition(s)",
            at_risk.join(", ")
        );
    }
    if snap.dropped_non_finite > 0 {
        println!(
            "  warning: {} non-finite gauge value(s) dropped by the metrics registry",
            snap.dropped_non_finite
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = cli_arg(&args, "--metrics").map(PathBuf::from) else {
        eprintln!("usage: obs_report --metrics <dir> [--reconcile <trace-dir>]");
        return ExitCode::FAILURE;
    };
    let reconcile_dir = cli_arg(&args, "--reconcile").map(PathBuf::from);

    let mut files = Vec::new();
    collect_snapshots(&dir, &mut files);
    if files.is_empty() {
        eprintln!("no .metrics.json snapshots under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in &files {
        let rel = path.strip_prefix(&dir).unwrap_or(path);
        let label = rel
            .to_string_lossy()
            .trim_end_matches(".metrics.json")
            .to_string();
        let snap = match load_snapshot(path) {
            Ok(s) => s,
            Err(e) => {
                println!("== {label} ==\n  FAIL {e}");
                failed = true;
                continue;
            }
        };
        dashboard(&label, &snap);
        if let Some(tdir) = &reconcile_dir {
            let trace_path = tdir.join(format!("{label}.jsonl"));
            match trace_counts(&trace_path) {
                Ok(tc) => {
                    let problems = reconcile(&snap, &tc);
                    if problems.is_empty() {
                        println!(
                            "  reconcile: ok ({} event(s))",
                            tc.events.values().sum::<u64>()
                        );
                    } else {
                        failed = true;
                        for p in &problems {
                            println!("  reconcile: FAIL {p}");
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    println!("  reconcile: FAIL {}: {e}", trace_path.display());
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
