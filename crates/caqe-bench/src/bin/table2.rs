//! Table 2: the five contract classes, printed as utility values over a
//! time grid so the shapes of Figures 2–3 are visible in a terminal.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin table2
//! ```

use caqe_contract::{Contract, EmissionCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if caqe_bench::report::cli_trace(&args).is_some() {
        eprintln!("note: table2 evaluates contract shapes analytically; no engine runs, so --trace writes nothing");
    }
    if caqe_bench::report::cli_metrics(&args).is_some() {
        eprintln!("note: table2 evaluates contract shapes analytically; no engine runs, so --metrics writes nothing");
    }
    let t_param = 10.0;
    let interval = 1.0;
    let est_total = 100.0;
    let grid: [f64; 9] = [1.0, 2.0, 5.0, 8.0, 10.0, 12.0, 20.0, 50.0, 100.0];

    println!("Table 2 — progressive contracts (t_C1 = t_C3 = {t_param}s, interval = {interval}s, N_est = {est_total})");
    println!();
    print!("{:<6}", "ts");
    for c in 1..=5 {
        print!("{:>9}", format!("C{c}"));
    }
    println!();
    for &ts in &grid {
        print!("{ts:<6}");
        for id in 1..=5 {
            let contract = Contract::table2(id, t_param, interval);
            // Score the k-th result where k tracks a steady reporter
            // producing one result per interval.
            let seq = (ts / interval).ceil().max(1.0) as u64;
            let u = contract.utility(&EmissionCtx::new(ts, seq, est_total));
            print!("{u:>9.3}");
        }
        println!();
    }

    println!();
    println!("Shapes (per contract):");
    println!("  C1 — hard deadline: 1 until t_C1, 0 after (Figure 2.a)");
    println!("  C2 — logarithmic decay 1/log10(ts), clamped to [0,1]");
    println!("  C3 — soft deadline: 1 until t_C3, then 1/(ts − t_C3)");
    println!("  C4 — cardinality quota: 10% of results due every interval");
    println!("  C5 — hybrid: ϑ_C4 · (1/ts) (Equation 5)");
}
