//! Serving-layer benchmark for PR 9 (`BENCH_PR9.json`): prices the
//! wall-clock front door that DESIGN.md §18 wraps around the deterministic
//! core, and proves its two robustness claims in the same artifact.
//!
//! Three phases, one JSON object:
//!
//! 1. **Clean serving** — submit `--sessions` catalog queries upfront and
//!    drain them in deterministic epochs; best-of-`--reps` wall seconds,
//!    with per-session digests asserted identical across reps.
//! 2. **Kill and restore** — run one epoch, snapshot, restore into a fresh
//!    server and drain the remainder. The restore call itself is timed
//!    (`restart_recovery_wall_seconds`) and the combined digest set must
//!    equal the uninterrupted run's (`restore_identical`).
//! 3. **Chaos soak** — concurrent clients against a bounded queue under
//!    the PR 4 fault plan; reports peak queue depth against the bound,
//!    reject counts, and contract-SLO retention versus a clean baseline.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr9 -- [--n <rows>]
//!     [--sessions <s>] [--batch <e>] [--clients <c>] [--submits <k>]
//!     [--bound <b>] [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_bench::ExperimentConfig;
use caqe_core::{EngineConfig, QuerySpec};
use caqe_data::{Distribution, Table, ValidationPolicy};
use caqe_faults::FaultPlan;
use caqe_serve::{mix_request, run_soak, CaqeServer, ServeConfig, SoakConfig, SubmitResponse};
use std::num::NonZeroUsize;
use std::time::Instant;

struct Inputs {
    tables: (Table, Table),
    catalog: Vec<QuerySpec>,
    cfg: ExperimentConfig,
}

fn inputs(n: usize) -> Inputs {
    let mut cfg = ExperimentConfig::new(Distribution::Independent, 2);
    cfg.n = n;
    cfg.workload_size = 4;
    cfg.cells_per_table = 8;
    cfg.reference_secs = Some(cfg.reference_seconds());
    let tables = cfg.tables();
    let catalog = cfg.workload().queries().to_vec();
    Inputs {
        tables,
        catalog,
        cfg,
    }
}

/// Builds a fresh server with `sessions` upfront submissions. Panics on a
/// reject: run mode sets the bound to the session count, so a reject here
/// means the admission queue itself is broken.
fn loaded_server(inp: &Inputs, serve: ServeConfig, sessions: usize) -> CaqeServer {
    let server = CaqeServer::new(
        inp.tables.clone(),
        inp.catalog.clone(),
        inp.cfg.exec(),
        EngineConfig::caqe(),
        serve,
    );
    for i in 0..sessions {
        match server.submit(mix_request(inp.catalog.len(), 0, i)) {
            SubmitResponse::Accepted { .. } => {}
            SubmitResponse::Rejected { reason, .. } => {
                eprintln!("upfront submission {i} rejected: {reason}");
                std::process::exit(2);
            }
        }
    }
    server
}

/// Order-sensitive FNV-1a fold over a run's sorted per-session digest
/// pairs: the committed witness behind the `restore_identical` claim.
fn sessions_digest(sessions: &[(u64, u64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(id, d) in sessions {
        for b in id.to_le_bytes().into_iter().chain(d.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 600);
    let sessions: usize = cli_parse(&args, "--sessions", 12);
    let batch: usize = cli_parse(&args, "--batch", 4);
    let clients: usize = cli_parse(&args, "--clients", 4);
    let submits: usize = cli_parse(&args, "--submits", 6);
    let bound: usize = cli_parse(&args, "--bound", 6);
    let reps: usize = cli_parse(&args, "--reps", 3).max(1);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let inp = inputs(n);
    let serve = ServeConfig {
        queue_bound: sessions.max(1),
        epoch_batch: batch,
        ..ServeConfig::default()
    };

    // Phase 1: clean serving wall time, digest-checked across reps.
    let mut serve_secs = f64::INFINITY;
    let mut baseline_digests: Option<Vec<(u64, u64)>> = None;
    let mut epochs = 0;
    let mut mean_satisfaction = 0.0;
    let mut deterministic = true;
    for _ in 0..reps {
        let server = loaded_server(&inp, serve, sessions);
        let start = Instant::now();
        let reports = server.drain();
        serve_secs = serve_secs.min(start.elapsed().as_secs_f64());
        if reports.iter().any(|r| !r.succeeded) {
            eprintln!("clean serving epoch failed — inputs are fault-free, this is a bug");
            std::process::exit(1);
        }
        epochs = reports.len();
        mean_satisfaction = server.mean_satisfaction();
        let digests = server.session_digests();
        match &baseline_digests {
            Some(prev) => deterministic &= *prev == digests,
            None => baseline_digests = Some(digests),
        }
    }
    let baseline_digests = baseline_digests.unwrap_or_default();
    if !deterministic {
        eprintln!("per-session digests diverged across reps");
        std::process::exit(1);
    }

    // Phase 2: kill after one epoch, snapshot, restore, drain the rest.
    // The timed section is exactly the recovery path: parsing + checksum
    // verification + state rebuild inside `CaqeServer::restore`.
    let snap_path = std::env::temp_dir().join(format!("bench_pr9_{}.snapshot", std::process::id()));
    let killed = loaded_server(&inp, serve, sessions);
    killed.run_epoch();
    if let Err(e) = killed.shutdown_to_snapshot(&snap_path) {
        eprintln!("snapshot failed: {e}");
        std::process::exit(1);
    }
    let start = Instant::now();
    let restored = CaqeServer::restore(
        inp.tables.clone(),
        inp.catalog.clone(),
        inp.cfg.exec(),
        EngineConfig::caqe(),
        serve,
        &snap_path,
    );
    let recovery_secs = start.elapsed().as_secs_f64();
    let (restored, snap) = match restored {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("restore failed: {e}");
            std::process::exit(1);
        }
    };
    restored.drain();
    let restored_digests = restored.session_digests();
    let restore_identical = restored_digests == baseline_digests;
    let _ = std::fs::remove_file(&snap_path);
    if !restore_identical {
        eprintln!("restored run's digests diverged from the uninterrupted run");
        std::process::exit(1);
    }

    // Phase 3: chaos soak — backpressure and SLO retention under faults.
    let faults = FaultPlan::seeded(7)
        .with_panics(0.15)
        .with_spikes(0.10, 8.0)
        .with_estimator_noise(0.20, 4.0)
        .with_corruption(0.02);
    caqe_faults::silence_injected_panics();
    let soak = SoakConfig {
        clients,
        submits_per_client: submits,
        serve: ServeConfig {
            queue_bound: bound,
            epoch_batch: batch.min(bound.max(1)),
            ..ServeConfig::default()
        },
        ..SoakConfig::default()
    };
    let report = run_soak(
        &inp.tables,
        &inp.catalog,
        &inp.cfg.exec(),
        &inp.cfg
            .exec()
            .with_faults(faults)
            .with_validation(ValidationPolicy::Quarantine),
        &EngineConfig::caqe(),
        &soak,
    );
    if report.unresolved > 0 || report.peak_depth > report.queue_bound {
        eprintln!(
            "soak violation: {} unresolved, peak depth {}/{}",
            report.unresolved, report.peak_depth, report.queue_bound
        );
        std::process::exit(1);
    }

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr9")
        .uint("n", n as u64)
        .uint("sessions", sessions as u64)
        .uint("epoch_batch", batch as u64)
        .uint("epochs", epochs as u64)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", "serving")
        .number("serve_wall_seconds", serve_secs)
        .number("mean_satisfaction", mean_satisfaction)
        .number("restart_recovery_wall_seconds", recovery_secs)
        .uint("snapshot_version", u64::from(snap.version))
        .uint("snapshot_completed", snap.completed.len() as u64)
        .uint("snapshot_queued", snap.queued.len() as u64)
        .bool("restore_identical", restore_identical)
        .string(
            "baseline_sessions_digest",
            &format!("{:016x}", sessions_digest(&baseline_digests)),
        )
        .string(
            "restored_sessions_digest",
            &format!("{:016x}", sessions_digest(&restored_digests)),
        )
        .bool("deterministic", deterministic)
        .uint("soak_clients", clients as u64)
        .uint("soak_submits_per_client", submits as u64)
        .string("soak_faults", &faults.to_spec())
        .uint("soak_submitted", report.submitted)
        .uint("soak_accepted", report.accepted)
        .uint("soak_rejected", report.rejected)
        .uint("queue_depth_peak", report.peak_depth)
        .uint("queue_bound", report.queue_bound)
        .number("soak_sat_retention", report.retention)
        .number("soak_wall_seconds", report.wall_seconds);
    let json = obj.finish();
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "serving: {sessions} sessions in {epochs} epochs, {serve_secs:.3}s clean; \
         recovery {recovery_secs:.4}s (digests identical); soak peak {}/{} with {} rejects, \
         retention {:.3} ({out_path})",
        report.peak_depth, report.queue_bound, report.rejected, report.retention
    );
}
