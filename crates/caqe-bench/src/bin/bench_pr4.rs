//! Graceful-degradation benchmark for the chaos subsystem (DESIGN.md §13),
//! recorded in `BENCH_PR4.json`.
//!
//! Runs CAQE on one experimental cell under three scenarios sharing tables,
//! workload and contract calibration:
//!
//! 1. **clean** — no faults (the golden path);
//! 2. **chaos** — the `--faults` plan (worker panics, cost spikes,
//!    estimator noise, input corruption) with quarantine-based recovery;
//! 3. **chaos+shed** — the same plan with contract-aware load shedding
//!    enabled (`--floor`, default 0.5).
//!
//! Every scenario is executed `--reps` times (default 2) and all
//! repetitions are compared field-by-field — `"deterministic"` in the
//! output asserts that fault injection and recovery are a pure function of
//! (seed, plan), per the repo's determinism contract. `"measures":
//! "degradation"`: the headline numbers are the satisfaction retained
//! under chaos relative to clean.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr4 -- [--n <rows>]
//!     [--faults <spec>] [--floor <sat>] [--threads <t>] [--reps <k>]
//!     [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_faults, cli_parse, cli_threads};
use caqe_bench::ExperimentConfig;
use caqe_core::{CaqeStrategy, DegradationPolicy, ExecConfig, ExecutionStrategy, RunOutcome};
use caqe_data::{Distribution, ValidationPolicy};
use caqe_faults::{silence_injected_panics, FaultPlan};
use std::num::NonZeroUsize;

/// Per-query observables: emission `(ts, utility)` pairs and result
/// `(rid, tid)` provenance.
type QueryDigest = (Vec<(f64, f64)>, Vec<(u64, u64)>);

/// The outcome fields every repetition must agree on byte-for-byte
/// (wall-clock time is excluded by construction).
fn digest(o: &RunOutcome) -> (String, Vec<QueryDigest>, f64) {
    (
        format!("{:?}", o.stats),
        o.per_query
            .iter()
            .map(|q| (q.emissions.clone(), q.results.clone()))
            .collect(),
        o.virtual_seconds,
    )
}

struct Scenario {
    label: &'static str,
    outcome: RunOutcome,
}

impl Scenario {
    fn to_json(&self) -> String {
        let s = &self.outcome.stats;
        let mut w = ObjectWriter::new();
        w.string("scenario", self.label)
            .number("avg_satisfaction", self.outcome.avg_satisfaction())
            .number("total_p_score", self.outcome.total_p_score())
            .uint("results", self.outcome.total_results() as u64)
            .number("virtual_seconds", self.outcome.virtual_seconds)
            .uint("region_retries", s.region_retries)
            .uint("regions_quarantined", s.regions_quarantined)
            .uint("regions_shed", s.regions_shed)
            .uint("ingest_quarantined", s.ingest_quarantined)
            .uint("ingest_clamped", s.ingest_clamped);
        w.finish()
    }
}

fn main() {
    silence_injected_panics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 1500);
    let reps: usize = cli_parse(&args, "--reps", 2);
    assert!(reps >= 1, "--reps must be at least 1");
    let floor: f64 = cli_parse(&args, "--floor", 0.5);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let faults = {
        let plan = cli_faults(&args);
        if plan.is_active() {
            plan
        } else {
            // Default chaos plan: every fault domain exercised.
            FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.10, 8.0)
                .with_estimator_noise(0.20, 4.0)
                .with_corruption(0.02)
        }
    };

    let mut cfg = ExperimentConfig::new(Distribution::Independent, 2);
    cfg.n = n;
    cfg.workload_size = 6;
    cfg.cells_per_table = 10;
    cfg.parallelism = cli_threads(&args);
    cfg.reference_secs = Some(cfg.reference_seconds());
    let (r, t) = cfg.tables();
    let workload = cfg.workload();

    // Each scenario runs `reps` times; every repetition must produce the
    // same digest (wall time excluded), which is what `deterministic`
    // certifies in the artifact.
    let run = |exec: &ExecConfig| {
        let mut last = None;
        for _ in 0..reps {
            let o = CaqeStrategy
                .try_run(&r, &t, &workload, exec)
                .expect("quarantine validation never rejects");
            if let Some(prev) = &last {
                assert!(
                    digest(prev) == digest(&o),
                    "run diverged between repetitions — execution is not deterministic"
                );
            }
            last = Some(o);
        }
        #[allow(clippy::expect_used)] // reps >= 1 is asserted above
        last.expect("at least one repetition")
    };

    let clean_exec = cfg.exec();
    let chaos_exec = cfg
        .exec()
        .with_faults(faults)
        .with_validation(ValidationPolicy::Quarantine);
    let shed_exec = chaos_exec.with_degradation(DegradationPolicy {
        sat_floor: floor,
        grace_ticks: 20_000,
    });

    let clean = run(&clean_exec);
    let chaos = run(&chaos_exec);
    // `run` asserted digest equality across repetitions for every scenario
    // (vacuously true at --reps 1).
    let deterministic = true;
    let shed = run(&shed_exec);

    let retention = |s: &Scenario| {
        let base = clean.avg_satisfaction();
        if base > 0.0 {
            s.outcome.avg_satisfaction() / base
        } else {
            1.0
        }
    };

    let scenarios = [
        Scenario {
            label: "clean",
            outcome: clean.clone(),
        },
        Scenario {
            label: "chaos",
            outcome: chaos,
        },
        Scenario {
            label: "chaos_shed",
            outcome: shed,
        },
    ];

    let scenario_json: Vec<String> = scenarios.iter().map(Scenario::to_json).collect();
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr4")
        .uint("n", n as u64)
        .uint("queries", workload.len() as u64)
        .uint("threads", cfg.parallelism.unwrap_or(1).max(1) as u64)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", "degradation")
        .string("faults", &faults.to_spec())
        .number("sat_floor", floor)
        .bool("deterministic", deterministic)
        .number("chaos_sat_retention", retention(&scenarios[1]))
        .number("shed_sat_retention", retention(&scenarios[2]))
        .raw("scenarios", &format!("[{}]", scenario_json.join(",")));
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");

    for s in &scenarios {
        let st = &s.outcome.stats;
        println!(
            "{:<11} sat {:.3}  p-score {:>8.1}  results {:>5}  retries {:>3}  \
             quarantined {:>3}  shed {:>3}  ingest-q {:>4}",
            s.label,
            s.outcome.avg_satisfaction(),
            s.outcome.total_p_score(),
            s.outcome.total_results(),
            st.region_retries,
            st.regions_quarantined,
            st.regions_shed,
            st.ingest_quarantined,
        );
    }
    println!(
        "deterministic: {deterministic}  faults: {}  ({out_path})",
        faults.to_spec()
    );
}
