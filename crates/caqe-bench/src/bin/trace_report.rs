//! Offline summarizer and validator for trace directories produced with
//! `--trace <dir>` (see DESIGN.md §11).
//!
//! ```text
//! cargo run --release -p caqe-bench --bin trace_report -- --trace <dir> [--check]
//! ```
//!
//! Per `*.jsonl` stream found (recursively): event counts, per-query
//! emission totals and final satisfaction, estimator-accuracy aggregates
//! and the longest phase spans. With `--check`, the tool instead acts as a
//! validator — every line must parse, emission ticks must be monotone
//! non-decreasing (the virtual clock never runs backwards), per-query
//! emission sequence numbers must be gapless from 1, and the sibling
//! `.satisfaction.csv` must exist with a monotone `virtual_seconds` column.
//! Chaos events (DESIGN.md §13) are validated too: a `quarantine` must be
//! preceded by at least one `retry` for the same region, and a region that
//! was `shed` must never appear in a later scheduling decision.
//! Any violation exits non-zero, so CI can gate on it.

use caqe_bench::json::{parse, JsonValue};
use caqe_bench::report::{cli_flag, cli_trace};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_jsonl(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_jsonl(&p, out);
        } else if p.extension().is_some_and(|e| e == "jsonl") {
            out.push(p);
        }
    }
}

/// One stream's digest; `problems` is non-empty only when validation fails.
#[derive(Default)]
struct Digest {
    counts: BTreeMap<String, u64>,
    strategy: String,
    /// query id -> (emissions, final satisfaction).
    queries: BTreeMap<u64, (u64, f64)>,
    /// (duration ticks, kind, group) of the longest spans.
    spans: Vec<(u64, String, Option<u64>)>,
    estimator: (u64, f64, f64), // audits, Σ ticks_err, max ticks_err
    /// (group, region) -> retry count, for the quarantine-implies-retry rule.
    retries: BTreeMap<(u64, u64), u64>,
    /// (group, region) -> tick it was shed at; shed regions must never be
    /// scheduled again.
    shed: BTreeMap<(u64, u64), u64>,
    /// Queries declared by the run's `meta` line (the initial workload).
    initial_queries: u64,
    /// query -> admission tick, for queries added by session events.
    admitted: BTreeMap<u64, u64>,
    /// query -> departure tick; a departed query must never emit again.
    departed: BTreeMap<u64, u64>,
    /// `null` values in the stream — the JSON exporter writes non-finite
    /// floats as `null`, so every one is a dropped number worth a warning.
    nulls: u64,
    /// Serving-layer admission rejects (`reject` events).
    rejects: u64,
    /// Line a `shutdown` event was seen at; nothing may execute after it.
    shutdown_line: Option<usize>,
    /// Whether any `decision`/`emit` activity was seen yet — a `restore`
    /// must precede all of it (a server restores before serving).
    activity_seen: bool,
    problems: Vec<String>,
}

/// Recursively counts `null` values (non-finite floats dropped at export).
fn count_nulls(v: &JsonValue) -> u64 {
    match v {
        JsonValue::Null => 1,
        JsonValue::Array(items) => items.iter().map(count_nulls).sum(),
        JsonValue::Object(map) => map.values().map(count_nulls).sum(),
        _ => 0,
    }
}

fn group_region(v: &caqe_bench::json::JsonValue) -> (u64, u64) {
    (
        v["group"].as_f64().unwrap_or(-1.0) as u64,
        v["region"].as_f64().unwrap_or(-1.0) as u64,
    )
}

fn digest(path: &Path) -> Digest {
    let mut d = Digest::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            d.problems.push(format!("unreadable: {e}"));
            return d;
        }
    };
    let mut last_emit_tick = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let v = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                d.problems.push(format!("line {}: {e}", lineno + 1));
                continue;
            }
        };
        d.nulls += count_nulls(&v);
        let ev = v["ev"].as_str().unwrap_or("?").to_string();
        *d.counts.entry(ev.clone()).or_insert(0) += 1;
        match ev.as_str() {
            "meta" => {
                if let Some(s) = v["strategy"].as_str() {
                    if d.strategy.is_empty() {
                        d.strategy = s.to_string();
                    }
                }
                d.initial_queries = v["queries"].as_f64().unwrap_or(0.0) as u64;
            }
            "emit" => {
                d.activity_seen = true;
                if let Some(at) = d.shutdown_line {
                    d.problems.push(format!(
                        "line {}: emission after the shutdown at line {at}",
                        lineno + 1
                    ));
                }
                let tick = v["tick"].as_f64().unwrap_or(-1.0) as u64;
                if tick < last_emit_tick {
                    d.problems.push(format!(
                        "line {}: emission tick {tick} precedes {last_emit_tick}",
                        lineno + 1
                    ));
                }
                last_emit_tick = tick;
                let q = v["query"].as_f64().unwrap_or(-1.0) as u64;
                // Session lifetime rules: a query only emits between its
                // admission (birth at tick 0 for the initial workload) and
                // its departure.
                if q >= d.initial_queries && !d.admitted.contains_key(&q) {
                    d.problems.push(format!(
                        "line {}: emission for query {q} before its admission",
                        lineno + 1
                    ));
                }
                if let Some(depart_tick) = d.departed.get(&q) {
                    if tick > *depart_tick {
                        d.problems.push(format!(
                            "line {}: query {q} emitted at tick {tick} after departing \
                             at tick {depart_tick}",
                            lineno + 1
                        ));
                    }
                }
                let seq = v["seq"].as_f64().unwrap_or(0.0) as u64;
                let sat = v["satisfaction"].as_f64().unwrap_or(f64::NAN);
                let entry = d.queries.entry(q).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 = sat;
                if seq != entry.0 {
                    d.problems.push(format!(
                        "line {}: query {q} emission seq {seq}, expected {}",
                        lineno + 1,
                        entry.0
                    ));
                }
            }
            "span" => {
                let start = v["start_tick"].as_f64().unwrap_or(0.0) as u64;
                let end = v["end_tick"].as_f64().unwrap_or(0.0) as u64;
                d.spans.push((
                    end.saturating_sub(start),
                    v["kind"].as_str().unwrap_or("?").to_string(),
                    v["group"].as_f64().map(|g| g as u64),
                ));
            }
            "estimate" => {
                let err = v["ticks_err"].as_f64().unwrap_or(f64::NAN);
                d.estimator.0 += 1;
                d.estimator.1 += err;
                d.estimator.2 = d.estimator.2.max(err);
            }
            "decision" => {
                d.activity_seen = true;
                if let Some(at) = d.shutdown_line {
                    d.problems.push(format!(
                        "line {}: scheduling decision after the shutdown at line {at}",
                        lineno + 1
                    ));
                }
                // A shed region must never be scheduled again: shedding
                // retires it from the dependency graph, so any later
                // Decision naming it means the degradation path leaked.
                let key = group_region(&v);
                let tick = v["tick"].as_f64().unwrap_or(-1.0) as u64;
                if let Some(shed_tick) = d.shed.get(&key) {
                    if tick >= *shed_tick {
                        d.problems.push(format!(
                            "line {}: region {}/{} scheduled at tick {tick} after being \
                             shed at tick {shed_tick}",
                            lineno + 1,
                            key.0,
                            key.1
                        ));
                    }
                }
            }
            "fault" | "ingest" => {}
            "retry" => {
                *d.retries.entry(group_region(&v)).or_insert(0) += 1;
            }
            "quarantine" => {
                // Quarantine is the terminal state of the retry ladder —
                // it can only be reached after at least one recorded retry
                // for the same region.
                let key = group_region(&v);
                if d.retries.get(&key).copied().unwrap_or(0) == 0 {
                    d.problems.push(format!(
                        "line {}: region {}/{} quarantined without a prior retry",
                        lineno + 1,
                        key.0,
                        key.1
                    ));
                }
            }
            "shed" => {
                let tick = v["tick"].as_f64().unwrap_or(-1.0) as u64;
                d.shed.insert(group_region(&v), tick);
            }
            "admit" => {
                let q = v["query"].as_f64().unwrap_or(-1.0) as u64;
                let tick = v["tick"].as_f64().unwrap_or(-1.0) as u64;
                // Global query slots are never reused: an admission must
                // name a fresh id past the initial workload.
                if q < d.initial_queries || d.admitted.contains_key(&q) {
                    d.problems.push(format!(
                        "line {}: admission reuses query slot {q}",
                        lineno + 1
                    ));
                }
                d.admitted.insert(q, tick);
            }
            "depart" => {
                let q = v["query"].as_f64().unwrap_or(-1.0) as u64;
                let tick = v["tick"].as_f64().unwrap_or(-1.0) as u64;
                if q >= d.initial_queries && !d.admitted.contains_key(&q) {
                    d.problems.push(format!(
                        "line {}: departure of never-admitted query {q}",
                        lineno + 1
                    ));
                }
                if d.departed.contains_key(&q) {
                    d.problems
                        .push(format!("line {}: query {q} departed twice", lineno + 1));
                }
                d.departed.insert(q, tick);
            }
            "reject" => {
                d.rejects += 1;
                // A queue-full reject is only honest backpressure when the
                // queue really was at its bound.
                if v["reason"].as_str() == Some("full") {
                    let depth = v["depth"].as_f64().unwrap_or(-1.0);
                    let bound = v["bound"].as_f64().unwrap_or(f64::INFINITY);
                    if depth < bound {
                        d.problems.push(format!(
                            "line {}: queue-full reject at depth {depth} below bound {bound}",
                            lineno + 1
                        ));
                    }
                }
            }
            "shutdown" => {
                if d.shutdown_line.is_some() {
                    d.problems
                        .push(format!("line {}: second shutdown event", lineno + 1));
                }
                d.shutdown_line = Some(lineno + 1);
            }
            "restore" => {
                // A restore happens before the server serves anything:
                // decision/emit activity before it means the stream mixes a
                // live run with a restored one.
                if d.activity_seen {
                    d.problems.push(format!(
                        "line {}: restore after decision/emission activity",
                        lineno + 1
                    ));
                }
            }
            other => {
                d.problems
                    .push(format!("line {}: unknown event kind `{other}`", lineno + 1));
            }
        }
    }
    d.spans.sort_by_key(|s| std::cmp::Reverse(s.0));
    d.spans.truncate(3);
    check_csv(path, &mut d);
    d
}

/// The sibling `.satisfaction.csv` must exist and be monotone in virtual
/// time (emissions happen in clock order).
fn check_csv(jsonl: &Path, d: &mut Digest) {
    let csv = jsonl.with_extension("").with_extension("satisfaction.csv");
    let text = match std::fs::read_to_string(&csv) {
        Ok(t) => t,
        Err(_) => {
            d.problems
                .push(format!("missing sibling {}", csv.display()));
            return;
        }
    };
    let mut last = f64::NEG_INFINITY;
    for (lineno, line) in text.lines().enumerate().skip(1) {
        let Some(first) = line.split(',').next() else {
            continue;
        };
        let Ok(secs) = first.parse::<f64>() else {
            d.problems.push(format!(
                "csv line {}: bad virtual_seconds `{first}`",
                lineno + 1
            ));
            continue;
        };
        if secs < last {
            d.problems.push(format!(
                "csv line {}: virtual_seconds {secs} precedes {last}",
                lineno + 1
            ));
        }
        last = secs;
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(dir) = cli_trace(&args) else {
        eprintln!("usage: trace_report --trace <dir> [--check]");
        return ExitCode::FAILURE;
    };
    let check = cli_flag(&args, "--check");

    let mut files = Vec::new();
    collect_jsonl(&dir, &mut files);
    if files.is_empty() {
        eprintln!("no .jsonl traces under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in &files {
        let d = digest(path);
        let rel = path.strip_prefix(&dir).unwrap_or(path);
        let counts: Vec<String> = d.counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("== {} ({}) ==", rel.display(), d.strategy);
        println!("  events: {}", counts.join("  "));
        for (q, (n, sat)) in &d.queries {
            println!("  query {q}: {n} emissions, final satisfaction {sat:.3}");
        }
        if !d.admitted.is_empty() || !d.departed.is_empty() {
            println!(
                "  session: {} admission(s), {} departure(s)",
                d.admitted.len(),
                d.departed.len()
            );
        }
        let serving = |kind: &str| d.counts.get(kind).copied().unwrap_or(0);
        if d.rejects + serving("shutdown") + serving("restore") > 0 {
            println!(
                "  serving: {} reject(s), {} shutdown(s), {} restore(s)",
                d.rejects,
                serving("shutdown"),
                serving("restore")
            );
        }
        if d.estimator.0 > 0 {
            println!(
                "  estimator: {} audits, ticks rel-error mean {:.3} max {:.3}",
                d.estimator.0,
                d.estimator.1 / d.estimator.0 as f64,
                d.estimator.2
            );
        }
        for (dur, kind, group) in &d.spans {
            match group {
                Some(g) => println!("  span {kind} (group {g}): {dur} ticks"),
                None => println!("  span {kind}: {dur} ticks"),
            }
        }
        if d.nulls > 0 {
            println!(
                "  warning: {} non-finite value(s) dropped to null by the JSON exporter",
                d.nulls
            );
        }
        if check {
            if d.problems.is_empty() {
                println!("  check: ok");
            } else {
                failed = true;
                for p in &d.problems {
                    println!("  check: FAIL {p}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
