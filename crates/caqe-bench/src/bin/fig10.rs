//! Figure 10: resource statistics under contract C2 for all three data
//! distributions — (a) join results (memory), (b) pairwise skyline
//! comparisons (CPU), (c) total execution time.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin fig10 -- [--n <rows>] [--json] [--trace <dir>]
//!                                                  [--metrics <dir>] [--faults <spec>]
//!                                                  [--validation reject|quarantine|clamp]
//! ```

use caqe_bench::report::{
    cli_arg, cli_chaos, cli_flag, cli_metrics, cli_threads, cli_trace, render_jsonl, render_table,
};
use caqe_bench::{run_comparison_observed, ComparisonRow, ExperimentConfig};
use caqe_data::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = cli_flag(&args, "--json");
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);
    let (faults, validation) = cli_chaos(&args);

    let mut rows: Vec<ComparisonRow> = Vec::new();
    for dist in Distribution::ALL {
        let mut cfg = ExperimentConfig::new(dist, 2);
        cfg.parallelism = cli_threads(&args);
        cfg.faults = faults;
        cfg.validation = validation;
        if let Some(n) = cli_arg(&args, "--n") {
            cfg.n = match n.parse() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("bad --n value `{n}`: {e}");
                    std::process::exit(2);
                }
            };
        } else if dist == Distribution::Anticorrelated {
            cfg.n = 1200;
        }
        rows.extend(run_comparison_observed(
            &cfg,
            trace_dir.as_deref(),
            metrics_dir.as_deref(),
        ));
    }

    if json {
        println!("{}", render_jsonl(&rows));
        return;
    }
    print!(
        "{}",
        render_table("Figure 10 (statistics under C2, |S_Q|=11)", &rows)
    );
    for dist in Distribution::ALL {
        let label = dist.label();
        let caqe = rows
            .iter()
            .find(|r| r.distribution == label && r.strategy == "CAQE")
            .expect("CAQE row");
        println!("\n-- {label}: factors relative to CAQE --");
        for r in rows.iter().filter(|r| r.distribution == label) {
            println!(
                "  {:<9} joins x{:>6.1}  comparisons x{:>7.1}  time x{:>6.1}",
                r.strategy,
                r.join_results as f64 / caqe.join_results.max(1) as f64,
                r.dom_comparisons as f64 / caqe.dom_comparisons.max(1) as f64,
                r.virtual_seconds / caqe.virtual_seconds.max(1e-9),
            );
        }
    }
    println!();
}
