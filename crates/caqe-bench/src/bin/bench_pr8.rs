//! Partition-signature pruning speedup over the PR 6 block-kernel path,
//! recorded in `BENCH_PR8.json`.
//!
//! Replays the BENCH_PR3/PR6 workload (same tables: n=2500 per side, seed
//! 0xBE11C; same eight queries) through each query's dominance kernels —
//! BNL, the SFS filter scan and the streaming skyline insert — in two arms:
//!
//! * **block** — the PR 6 dispatching entry points (block-bitset kernels,
//!   DESIGN.md §15), the strongest previously committed path;
//! * **pruned** — the partition-signature paths (DESIGN.md §17): every
//!   kernel of a query resolves candidates on one shared
//!   [`CachedPresort`] bundle interned in a [`PresortCache`], so the
//!   signature table and monotone presort are derived once per query and
//!   reused by all three kernels (the cross-kernel sharing the cache
//!   exists for — its hit rate is reported below).
//!
//! The join output and the presort/signature bundles are materialized once
//! outside the timed region, exactly like the PR 6 artifact treats the SFS
//! presort: both are uncharged physical preprocessing, byte-identical in
//! both arms, and timing them would dilute the dominance-resolution ratio
//! the artifact exists to capture. Both arms are verified to report the
//! *identical* results, observable `Stats` and virtual ticks before any
//! timing is reported — signature screening may only be faster, never
//! observably different.
//!
//! One engine run (default config) additionally records the *plan-side*
//! signature cache counters, showing the shared-plan cache being hit by
//! the real batch-insert phase on the multi-query workload.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr8 -- [--n <rows>]
//!     [--cells <per-table>] [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{
    hash_join_project_store, sfs_order, skyline_bnl_pruned, skyline_bnl_store,
    skyline_sfs_presorted, skyline_sfs_presorted_pruned, IncrementalSkyline, JoinSpec, MappingFn,
    MappingSet, PresortCache, SigSkyline,
};
use caqe_trace::NoopSink;
use caqe_types::{DimMask, DomKernel, PointStore, SimClock, Stats};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Same four mapping variants as the BENCH_PR2/PR3/PR6 workloads.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

/// The eight-query BENCH_PR2/PR3/PR6 workload: four mapping variants × two
/// preference subspaces, alternating join columns.
fn workload() -> Workload {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    Workload::new(queries)
}

/// One query's dominance-kernel replay: everything both arms must agree on.
#[derive(PartialEq, Debug)]
struct Replay {
    bnl: Vec<usize>,
    sfs: Vec<usize>,
    incremental_tags: Vec<u64>,
    stats: Stats,
    ticks: u64,
}

/// Replays one query through the PR 6 dispatching kernels (the block arm).
fn replay_block(store: &PointStore, pref: DimMask, order: &[usize]) -> Replay {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let kernel = DomKernel::new(pref, store.stride());
    let bnl = skyline_bnl_store(store, &kernel, &mut clock, &mut stats);
    let sfs = skyline_sfs_presorted(store, &kernel, order, &mut clock, &mut stats);
    let mut sky = IncrementalSkyline::new(pref);
    for i in 0..store.len() {
        sky.insert(i as u64, store.at(i), &mut clock, &mut stats);
    }
    Replay {
        bnl,
        sfs,
        incremental_tags: sky.tags().collect(),
        stats,
        ticks: clock.ticks(),
    }
}

/// Replays one query through the partition-signature kernels, fetching the
/// interned presort/signature bundle once per kernel (three cache hits per
/// query per repetition — the cross-kernel sharing under measurement).
fn replay_pruned(store: &PointStore, pref: DimMask, qkey: u64, cache: &mut PresortCache) -> Replay {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let kernel = DomKernel::new(pref, store.stride());
    let bnl = {
        let b = cache
            .get_or_build(qkey, pref, store, &kernel, &mut stats)
            .expect("workload subspaces support signatures");
        skyline_bnl_pruned(store, &kernel, &b.table, &mut clock, &mut stats)
    };
    let sfs = {
        let b = cache
            .get_or_build(qkey, pref, store, &kernel, &mut stats)
            .expect("workload subspaces support signatures");
        skyline_sfs_presorted_pruned(store, &kernel, &b.order, &b.table, &mut clock, &mut stats)
    };
    let b = cache
        .get_or_build(qkey, pref, store, &kernel, &mut stats)
        .expect("workload subspaces support signatures");
    let mut sky = SigSkyline::new(pref, b.table.quantizer().clone());
    for i in 0..store.len() {
        sky.insert_sig(
            i as u64,
            store.at(i),
            b.table.sig(i),
            &mut clock,
            &mut stats,
        );
    }
    Replay {
        bnl,
        sfs,
        incremental_tags: sky.tags().collect(),
        stats,
        ticks: clock.ticks(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let reps: usize = cli_parse(&args, "--reps", 5);
    assert!(reps >= 1, "--reps must be at least 1");
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let w = workload();

    // Materialize the join output and SFS order once, outside the timed
    // region (uncharged physical preprocessing, identical in both arms).
    let joined: Vec<(PointStore, DimMask, Vec<usize>)> = w
        .queries()
        .iter()
        .map(|spec| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            let join = hash_join_project_store(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let kernel = DomKernel::new(spec.pref, join.store.stride());
            let order = sfs_order(&join.store, &kernel);
            (join.store, spec.pref, order)
        })
        .collect();
    let join_results: u64 = joined.iter().map(|(s, _, _)| s.len() as u64).sum();

    // Intern one presort/signature bundle per query up front — the pruned
    // arm's equivalent of the precomputed `order` above. The build misses
    // are counted here; the timed replays below only ever hit.
    let mut cache = PresortCache::new();
    let mut build_stats = Stats::new();
    for (q, (store, pref, _)) in joined.iter().enumerate() {
        let kernel = DomKernel::new(*pref, store.stride());
        cache
            .get_or_build(q as u64, *pref, store, &kernel, &mut build_stats)
            .expect("workload subspaces support signatures");
    }

    // --- Block arm (best of reps). ---
    let mut block_secs = f64::INFINITY;
    let mut block_out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out: Vec<Replay> = joined
            .iter()
            .map(|(store, pref, order)| replay_block(store, *pref, order))
            .collect();
        block_secs = block_secs.min(start.elapsed().as_secs_f64());
        block_out = Some(out);
    }
    let block_out = block_out.expect("reps >= 1");

    // --- Pruned arm (best of reps). ---
    let mut pruned_secs = f64::INFINITY;
    let mut pruned_out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out: Vec<Replay> = joined
            .iter()
            .enumerate()
            .map(|(q, (store, pref, _))| replay_pruned(store, *pref, q as u64, &mut cache))
            .collect();
        pruned_secs = pruned_secs.min(start.elapsed().as_secs_f64());
        pruned_out = Some(out);
    }
    let pruned_out = pruned_out.expect("reps >= 1");

    // Identity gate: signature screening must perform the identical charged
    // comparison sequence — same results, same observable counts, same
    // virtual ticks — and must actually have screened something.
    let mut dom_comparisons = 0u64;
    let mut prune_stats = Stats::new();
    for (q, (a, b)) in block_out.iter().zip(&pruned_out).enumerate() {
        assert_eq!(a.bnl, b.bnl, "q{q}: BNL skyline diverged");
        assert_eq!(a.sfs, b.sfs, "q{q}: SFS skyline diverged");
        assert_eq!(
            a.incremental_tags, b.incremental_tags,
            "q{q}: incremental skyline diverged"
        );
        assert_eq!(
            a.stats.observable(),
            b.stats.observable(),
            "q{q}: stats diverged"
        );
        assert_eq!(a.ticks, b.ticks, "q{q}: virtual clock diverged");
        assert!(
            b.stats.sig_partitions_skipped + b.stats.sig_partitions_rejected > 0,
            "q{q}: the pruned arm never screened a partition"
        );
        assert!(
            b.stats.presort_cache_hits >= 3,
            "q{q}: the presort cache was not shared across kernels"
        );
        dom_comparisons += a.stats.dom_comparisons;
        prune_stats += b.stats.clone();
    }
    let prune_speedup = block_secs / pruned_secs;
    let cache_hits = prune_stats.presort_cache_hits;
    let cache_misses = build_stats.presort_cache_misses;
    let hit_rate = cache_hits as f64 / (cache_hits + cache_misses) as f64;

    // --- Plan-side cache: one engine run on the same workload. ---
    let exec = ExecConfig::default().with_target_cells(n, cells);
    let engine = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &EventStream::empty(),
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut NoopSink,
    )
    .expect("bench inputs are clean");
    assert!(
        engine.stats.presort_cache_hits > 0,
        "plan-side signature cache never hit on the multi-query workload"
    );

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr8")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("queries", w.len() as u64)
        .uint("reps", reps as u64)
        .uint("host_cores", cores as u64)
        .string("measures", "kernel")
        .number("kernel_block_wall_seconds", block_secs)
        .number("kernel_pruned_wall_seconds", pruned_secs)
        .number("prune_speedup", prune_speedup)
        .uint("join_results", join_results)
        .uint("dom_comparisons", dom_comparisons)
        .bool("counts_identical", true)
        .uint("sig_partitions_skipped", prune_stats.sig_partitions_skipped)
        .uint(
            "sig_partitions_rejected",
            prune_stats.sig_partitions_rejected,
        )
        .uint("sig_builds", build_stats.sig_builds)
        .uint("presort_cache_hits", cache_hits)
        .uint("presort_cache_misses", cache_misses)
        .number("presort_cache_hit_rate", hit_rate)
        .uint("engine_presort_cache_hits", engine.stats.presort_cache_hits)
        .uint(
            "engine_presort_cache_misses",
            engine.stats.presort_cache_misses,
        )
        .uint("engine_sig_builds", engine.stats.sig_builds)
        .number("engine_virtual_seconds", engine.virtual_seconds);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "kernel replay, n={n}, {} queries: block {block_secs:.3}s, pruned \
         {pruned_secs:.3}s -> {prune_speedup:.2}x ({dom_comparisons} dom cmps, counts \
         identical); partitions skipped {} rejected {}; presort cache {cache_hits} \
         hit(s) / {cache_misses} miss(es) (rate {hit_rate:.3}); engine plan cache \
         {} hit(s) on {cores} core(s) ({out_path})",
        w.len(),
        prune_stats.sig_partitions_skipped,
        prune_stats.sig_partitions_rejected,
        engine.stats.presort_cache_hits,
    );
}
