//! Churn benchmark for the online session layer: the cost of *incremental*
//! shared-plan maintenance on admission (Def. 7 lattice patch + history
//! backfill) versus rebuilding the whole min-max-cuboid plan from the
//! materialized history — the comparison arm behind
//! `ExecConfig::rebuild_on_admit`. Both arms execute the identical event
//! stream; final result sets of every non-departed query are asserted
//! identical before anything is reported. Results land in `BENCH_PR5.json`.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr5 -- [--n <rows>]
//!     [--cells <per-table>] [--threads <k>] [--reps <r>] [--out <path>]
//!     [--events <spec>]
//! ```
//!
//! The default stream admits the two held-back pool queries mid-run and
//! retires one initial query: `admit@200000=6,admit@600000=7,depart@1000000=2`.

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, RunOutcome,
    SessionEvent, Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{MappingFn, MappingSet};
use caqe_trace::NoopSink;
use caqe_types::DimMask;
use std::collections::BTreeSet;
use std::num::NonZeroUsize;
use std::time::Instant;

/// The `par_speedup` workload shape: four join groups of two queries each.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

fn query_pool() -> Vec<QuerySpec> {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    queries
}

fn run_arm(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            events,
            exec,
            &EngineConfig::caqe(),
            0,
            &mut NoopSink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    (best, outcome.expect("reps >= 1"))
}

fn sorted_results(out: &RunOutcome, q: usize) -> Vec<(u64, u64)> {
    let mut v = out.per_query[q].results.clone();
    v.sort_unstable();
    v
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let threads: Option<usize> = caqe_bench::report::cli_threads(&args);
    let reps: usize = cli_parse(&args, "--reps", 3);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let spec = cli_arg(&args, "--events")
        .unwrap_or_else(|| "admit@200000=6,admit@600000=7,depart@1000000=2".to_string());

    let pool = query_pool();
    // The initial workload holds back the last two pool queries so the
    // default stream has genuinely new arrivals to admit.
    let w = Workload::new(pool[..6].to_vec());
    let events = match EventStream::parse(&spec, &pool) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("bad --events spec `{spec}`: {e}");
            std::process::exit(2);
        }
    };
    assert!(!events.is_empty(), "bench_pr5 needs a non-empty stream");
    let departed: BTreeSet<usize> = events
        .events()
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Depart { query, .. } => Some(query.index()),
            _ => None,
        })
        .collect();
    let admissions = events.len() - departed.len();

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let exec = ExecConfig::default()
        .with_target_cells(n, cells)
        .with_parallelism(threads);

    let (inc_secs, inc) = run_arm(&r, &t, &w, &events, &exec, reps);
    let (reb_secs, reb) = run_arm(&r, &t, &w, &events, &exec.with_rebuild_on_admit(true), reps);

    // Identity gate: both maintenance strategies must land on exactly the
    // same final result set for every query still active at the end. (A
    // departed query's truncation point depends on how far the clock had
    // advanced, which the rebuild cost legitimately shifts.)
    assert_eq!(inc.per_query.len(), reb.per_query.len(), "query count");
    for q in 0..inc.per_query.len() {
        if departed.contains(&q) {
            continue;
        }
        assert_eq!(
            sorted_results(&inc, q),
            sorted_results(&reb, q),
            "query {q}: incremental and rebuild arms disagree on results"
        );
    }

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr5_churn")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("initial_queries", w.len() as u64)
        .uint("admissions", admissions as u64)
        .uint("departures", departed.len() as u64)
        .uint("host_cores", cores as u64)
        .string("measures", "churn")
        .string("events", &spec)
        .uint("reps", reps as u64)
        .number("incremental_wall_seconds", inc_secs)
        .number("rebuild_wall_seconds", reb_secs)
        .number("incremental_virtual_seconds", inc.virtual_seconds)
        .number("rebuild_virtual_seconds", reb.virtual_seconds)
        .number(
            "rebuild_virtual_overhead",
            reb.virtual_seconds / inc.virtual_seconds.max(1e-12),
        )
        .uint("incremental_dom_comparisons", inc.stats.dom_comparisons)
        .uint("rebuild_dom_comparisons", reb.stats.dom_comparisons)
        .uint("incremental_join_results", inc.stats.join_results)
        .uint("rebuild_join_results", reb.stats.join_results)
        .uint("incremental_results", inc.total_results() as u64)
        .uint("rebuild_results", reb.total_results() as u64)
        .bool("results_identical", true);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "churn: {} admissions, {} departures over {} initial queries; \
         incremental {:.4}s virtual / rebuild {:.4}s virtual (x{:.2} \
         maintenance overhead), dom cmps {} vs {} ({out_path})",
        admissions,
        departed.len(),
        w.len(),
        inc.virtual_seconds,
        reb.virtual_seconds,
        reb.virtual_seconds / inc.virtual_seconds.max(1e-12),
        inc.stats.dom_comparisons,
        reb.stats.dom_comparisons,
    );
}
