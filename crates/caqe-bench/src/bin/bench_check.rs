//! Schema validator for the committed `BENCH_PR*.json` artifacts.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_check -- [--dir <repo-root>]
//! ```
//!
//! Replaces CI's former presence-only shell loop with two layers of checks:
//!
//! 1. **Presence** — every `crates/caqe-bench/src/bin/bench_pr<N>.rs`
//!    driver must have a committed `BENCH_PR<N>.json` artifact (or an
//!    explicit `BENCH_PR<N>.skip` marker) at the repo root, so a PR can't
//!    add a benchmark without committing its numbers.
//! 2. **Schema** — every `BENCH_PR*.json` at the root must parse as a
//!    single JSON object carrying: a `bench` string, a `host_cores`
//!    integer ≥ 1 (results are meaningless without the machine context),
//!    a `measures` string naming what the headline ratio prices
//!    (`kernel`, `overhead`, `scaling`, `degradation`, `churn`, ...),
//!    at least one finite headline number (a key containing `speedup`,
//!    `wall_seconds`, `overhead` or `retention`), and at least one
//!    workload-scale count (`n`, `queries`, `join_results`,
//!    `dom_comparisons`, `results` or `initial_queries`).
//! 3. **Cross-field honesty** — an integer `reps >= 1` (a headline time
//!    without a repetition count is unreproducible), every boolean key
//!    ending in `identical` must be `true` (a committed artifact claiming
//!    its own arms diverged is a red flag, not a result), and every scalar
//!    `speedup`/`overhead` key must equal the ratio of two committed
//!    `*_seconds` keys (the headline can't claim a ratio its own raw
//!    numbers don't support; `retention` keys are score fractions, not
//!    time ratios, and are exempt).
//! 4. **Serving artifacts** — `measures: "serving"` additionally requires
//!    a finite `restart_recovery_wall_seconds >= 0` (a serving benchmark
//!    without a recovery time measures nothing), an integer
//!    `queue_bound >= 1` with `queue_depth_peak <= queue_bound` (the
//!    admission bound must demonstrably hold in the committed run), and a
//!    finite `*retention*` key (SLO retention under chaos is the headline).
//!    Additionally, any artifact claiming `*restore_identical: true` must
//!    commit the digest pair the claim compared: at least two `*digest*`
//!    keys, two of which are equal — an equivalence claim without its
//!    witnesses is unverifiable. `measures: "warm-start"` artifacts must
//!    commit both arms' wall times (`cold_build_wall_seconds`,
//!    `warm_load_wall_seconds`) and carry the `restore_identical` claim.
//!
//! Any violation prints `FAIL` with the reason and exits non-zero.

use caqe_bench::json::{parse, JsonValue};
use caqe_bench::report::cli_arg;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A key whose value should be a finite headline ratio or wall time.
fn is_headline_key(k: &str) -> bool {
    ["speedup", "wall_seconds", "overhead", "retention"]
        .iter()
        .any(|p| k.contains(p))
}

/// A key whose value should be a workload-scale count.
fn is_count_key(k: &str) -> bool {
    matches!(
        k,
        "n" | "queries" | "initial_queries" | "join_results" | "dom_comparisons" | "results"
    ) || k.ends_with("_results")
}

/// Is `v` a non-negative integer-valued JSON number?
fn as_uint(v: &JsonValue) -> Option<u64> {
    let f = v.as_f64()?;
    (f.is_finite() && f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
}

/// All schema problems with one artifact (empty = valid).
fn validate(v: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let JsonValue::Object(map) = v else {
        return vec!["top level is not a JSON object".to_string()];
    };
    if v["bench"].as_str().is_none() {
        problems.push("missing string key `bench`".to_string());
    }
    match as_uint(&v["host_cores"]) {
        Some(c) if c >= 1 => {}
        Some(_) => problems.push("`host_cores` must be >= 1".to_string()),
        None => problems.push("missing integer key `host_cores`".to_string()),
    }
    if v["measures"].as_str().is_none() {
        problems.push("missing string key `measures`".to_string());
    }
    let headline = map
        .iter()
        .any(|(k, val)| is_headline_key(k) && val.as_f64().is_some_and(f64::is_finite));
    if !headline {
        problems.push(
            "no finite headline number (a key containing speedup/wall_seconds/overhead/retention)"
                .to_string(),
        );
    }
    let count = map
        .iter()
        .any(|(k, val)| is_count_key(k) && as_uint(val).is_some());
    if !count {
        problems.push(
            "no workload-scale count (n/queries/join_results/dom_comparisons/results)".to_string(),
        );
    }
    // Layer 3: cross-field honesty.
    match as_uint(&v["reps"]) {
        Some(r) if r >= 1 => {}
        Some(_) => problems.push("`reps` must be >= 1".to_string()),
        None => problems.push("missing integer key `reps`".to_string()),
    }
    for (k, val) in map {
        if k.ends_with("identical") {
            match val {
                JsonValue::Bool(true) => {}
                JsonValue::Bool(false) => {
                    problems.push(format!("`{k}` is false — the benchmark's arms diverged"));
                }
                _ => problems.push(format!("`{k}` must be a boolean")),
            }
        }
    }
    let seconds: Vec<f64> = map
        .iter()
        .filter(|(k, _)| k.contains("_seconds"))
        .filter_map(|(_, val)| val.as_f64())
        .filter(|f| f.is_finite() && *f > 0.0)
        .collect();
    for (k, val) in map {
        if !(k.contains("speedup") || k.contains("overhead")) || k.contains("retention") {
            continue;
        }
        let Some(ratio) = val.as_f64().filter(|f| f.is_finite()) else {
            continue; // non-scalar speedup-ish keys aren't headline ratios
        };
        let supported = seconds.iter().any(|a| {
            seconds
                .iter()
                .any(|b| *b > 0.0 && (a / b - ratio).abs() <= 1e-9 * ratio.abs().max(1.0))
        });
        if !supported {
            problems.push(format!(
                "`{k}` = {ratio} is not the ratio of any two committed `*_seconds` values"
            ));
        }
    }
    // Layer 4: serving artifacts prove their own admission and recovery
    // claims — the bound held, the restart was timed, retention is finite.
    if v["measures"].as_str() == Some("serving") {
        match v["restart_recovery_wall_seconds"].as_f64() {
            Some(s) if s.is_finite() && s >= 0.0 => {}
            Some(_) => {
                problems.push("`restart_recovery_wall_seconds` must be finite and >= 0".to_string())
            }
            None => problems.push(
                "serving artifact missing number key `restart_recovery_wall_seconds`".to_string(),
            ),
        }
        let bound = match as_uint(&v["queue_bound"]) {
            Some(b) if b >= 1 => Some(b),
            Some(_) => {
                problems.push("`queue_bound` must be >= 1".to_string());
                None
            }
            None => {
                problems.push("serving artifact missing integer key `queue_bound`".to_string());
                None
            }
        };
        match (as_uint(&v["queue_depth_peak"]), bound) {
            (Some(peak), Some(b)) if peak > b => problems.push(format!(
                "`queue_depth_peak` = {peak} exceeds `queue_bound` = {b} — the admission bound \
                 did not hold"
            )),
            (Some(_), _) => {}
            (None, _) => {
                problems.push("serving artifact missing integer key `queue_depth_peak`".to_string())
            }
        }
        let retention = map
            .iter()
            .any(|(k, val)| k.contains("retention") && val.as_f64().is_some_and(f64::is_finite));
        if !retention {
            problems.push("serving artifact has no finite `*retention*` key".to_string());
        }
    }
    // Layer 4 (continued): an identity claim must carry its witnesses.
    // A true `*restore_identical` asserts that a digest comparison held;
    // the compared pair must be committed (as strings or integers) and
    // must actually agree — otherwise the claim is unverifiable.
    let claims_restore = map
        .iter()
        .any(|(k, val)| k.ends_with("restore_identical") && matches!(val, JsonValue::Bool(true)));
    if claims_restore {
        let digests: Vec<String> = map
            .iter()
            .filter(|(k, _)| k.contains("digest"))
            .filter_map(|(_, val)| {
                val.as_str()
                    .map(str::to_string)
                    .or_else(|| as_uint(val).map(|u| u.to_string()))
            })
            .collect();
        if digests.len() < 2 {
            problems.push(
                "`restore_identical` is true but the compared `*digest*` pair is not committed"
                    .to_string(),
            );
        } else if !digests
            .iter()
            .enumerate()
            .any(|(i, a)| digests[i + 1..].iter().any(|b| a == b))
        {
            problems.push(
                "`restore_identical` is true but no two committed `*digest*` values agree"
                    .to_string(),
            );
        }
    }
    // Warm-start artifacts price a rebuild avoided: both arms' wall times
    // must be committed so the speedup is auditable from the raw numbers.
    if v["measures"].as_str() == Some("warm-start") {
        for key in ["cold_build_wall_seconds", "warm_load_wall_seconds"] {
            match v[key].as_f64() {
                Some(s) if s.is_finite() && s > 0.0 => {}
                _ => problems.push(format!(
                    "warm-start artifact missing finite positive number key `{key}`"
                )),
            }
        }
        if !claims_restore {
            problems.push(
                "warm-start artifact must claim `restore_identical: true` (the warm arm must \
                 prove it reproduced the cold arm before its time can be compared)"
                    .to_string(),
            );
        }
    }
    problems
}

/// PR numbers of `bench_pr<N>.rs` drivers under `crates/caqe-bench/src/bin`.
fn driver_numbers(root: &Path) -> Vec<u32> {
    let bin_dir = root.join("crates/caqe-bench/src/bin");
    let mut nums = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&bin_dir) {
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("bench_pr")
                .and_then(|s| s.strip_suffix(".rs"))
            {
                if let Ok(n) = num.parse() {
                    nums.push(n);
                }
            }
        }
    }
    nums.sort_unstable();
    nums
}

/// `BENCH_PR*.json` artifacts at the repo root, sorted.
fn artifacts(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("BENCH_PR") && name.ends_with(".json") {
                out.push(e.path());
            }
        }
    }
    out.sort();
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = PathBuf::from(cli_arg(&args, "--dir").unwrap_or_else(|| ".".to_string()));
    let mut failed = false;

    // Layer 1: every driver has a committed artifact (or a skip marker).
    let drivers = driver_numbers(&root);
    for n in &drivers {
        let artifact = root.join(format!("BENCH_PR{n}.json"));
        let skip = root.join(format!("BENCH_PR{n}.skip"));
        if !artifact.exists() && !skip.exists() {
            println!(
                "FAIL bench_pr{n}.rs: no committed BENCH_PR{n}.json (or BENCH_PR{n}.skip marker)"
            );
            failed = true;
        }
    }

    // Layer 2: every committed artifact satisfies the schema.
    let files = artifacts(&root);
    if files.is_empty() {
        println!("FAIL no BENCH_PR*.json artifacts under {}", root.display());
        failed = true;
    }
    for path in &files {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let name = name.as_deref().unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                println!("FAIL {name}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let v = match parse(text.trim()) {
            Ok(v) => v,
            Err(e) => {
                println!("FAIL {name}: bad JSON: {e}");
                failed = true;
                continue;
            }
        };
        let problems = validate(&v);
        if problems.is_empty() {
            println!(
                "ok   {name}: bench={} measures={} host_cores={}",
                v["bench"].as_str().unwrap_or("?"),
                v["measures"].as_str().unwrap_or("?"),
                as_uint(&v["host_cores"]).unwrap_or(0),
            );
        } else {
            failed = true;
            for p in &problems {
                println!("FAIL {name}: {p}");
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "bench_check: {} driver(s), {} artifact(s) valid",
            drivers.len(),
            files.len()
        );
        ExitCode::SUCCESS
    }
}
