//! Cost of live metrics collection (DESIGN.md §16), recorded in
//! `BENCH_PR7.json`.
//!
//! Replays the BENCH_PR2/PR3 workload (n=2500 per side, seed 0xBE11C,
//! eight queries in four join groups) through the engine twice: once with
//! the compiled-out [`NoopSink`] and once with an [`ObserverSink`] feeding
//! a live [`ObsCollector`] (contract-SLO monitor + phase profiler) while
//! forwarding to the same no-op inner sink. `"measures": "obs-overhead"`:
//! the headline ratio prices metrics collection alone.
//!
//! Before any number is reported the run asserts the observability
//! contract: observation is inert (`Stats` and the virtual clock are
//! bit-identical with and without the collector attached), and the metrics
//! snapshot is a pure function of the workload — byte-identical JSON
//! across `--threads 1/2/4/8`.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr7 -- [--n <rows>]
//!     [--cells <per-table>] [--threads <k>] [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::obs::obs_config;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, RunOutcome,
    Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_obs::{ObsCollector, ObserverSink};
use caqe_operators::{MappingFn, MappingSet};
use caqe_trace::NoopSink;
use caqe_types::DimMask;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Same four mapping variants as BENCH_PR2's `par_speedup` workload.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

fn workload() -> Workload {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    Workload::new(queries)
}

/// Best-of-`reps` wall seconds with the compiled-out no-op sink.
fn measure_off(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            &EventStream::empty(),
            exec,
            &EngineConfig::caqe(),
            0,
            &mut NoopSink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    (best, outcome.expect("reps >= 1"))
}

/// Same, with a live metrics collector observing every trace event.
fn measure_on(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome, ObsCollector) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    let mut collector = None;
    for _ in 0..reps {
        let mut sink = ObserverSink::new(obs_config(w), NoopSink);
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            &EventStream::empty(),
            exec,
            &EngineConfig::caqe(),
            0,
            &mut sink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
        let (_, c) = sink.into_parts();
        collector = Some(c);
    }
    (
        best,
        outcome.expect("reps >= 1"),
        collector.expect("reps >= 1"),
    )
}

/// The observed run's snapshot at a given worker count (single rep).
fn snapshot_at(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    exec: &ExecConfig,
    threads: usize,
) -> String {
    let mut sink = ObserverSink::new(obs_config(w), NoopSink);
    let o = try_run_engine_online_traced(
        "CAQE",
        r,
        t,
        w,
        &EventStream::empty(),
        &exec.with_parallelism(Some(threads)),
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("bench inputs are clean");
    let (_, mut collector) = sink.into_parts();
    collector.ingest_stats(&o.stats);
    collector.snapshot_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let threads: usize = cli_parse(&args, "--threads", 4);
    let reps: usize = cli_parse(&args, "--reps", 3);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let w = workload();
    let exec = ExecConfig::default()
        .with_target_cells(n, cells)
        .with_parallelism(Some(threads));

    let (off_secs, off_out) = measure_off(&r, &t, &w, &exec, reps);
    let (on_secs, on_out, mut collector) = measure_on(&r, &t, &w, &exec, reps);

    // Observation is inert: attaching the collector changes nothing the
    // engine can see.
    assert_eq!(
        off_out.stats, on_out.stats,
        "metrics collection changed stats"
    );
    assert_eq!(
        off_out.virtual_seconds.to_bits(),
        on_out.virtual_seconds.to_bits(),
        "metrics collection moved the virtual clock"
    );
    for (a, b) in off_out.per_query.iter().zip(&on_out.per_query) {
        assert_eq!(a.results, b.results, "metrics collection changed results");
        assert_eq!(
            a.emissions, b.emissions,
            "metrics collection changed emissions"
        );
    }

    // Snapshots are a pure function of the workload, not the worker count.
    let reference = snapshot_at(&r, &t, &w, &exec, 1);
    let mut snapshots_bit_identical = true;
    for k in [2usize, 4, 8] {
        if snapshot_at(&r, &t, &w, &exec, k) != reference {
            snapshots_bit_identical = false;
        }
    }
    assert!(
        snapshots_bit_identical,
        "metrics snapshot diverged across thread counts"
    );

    collector.ingest_stats(&on_out.stats);
    let emissions = collector
        .registry()
        .counter(caqe_obs::names::EMISSIONS)
        .unwrap_or(0);

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let obs_overhead = on_secs / off_secs;
    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr7")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("queries", w.len() as u64)
        .uint("threads", threads as u64)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", "obs-overhead")
        .number("off_wall_seconds", off_secs)
        .number("on_wall_seconds", on_secs)
        .number("obs_overhead", obs_overhead)
        .uint("emissions_observed", emissions)
        .uint("join_results", off_out.stats.join_results)
        .number("virtual_seconds", off_out.virtual_seconds)
        .bool("bit_identical", true)
        .bool("snapshots_bit_identical", snapshots_bit_identical);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "obs overhead, n={n}, {} queries, {threads} threads: metrics off {off_secs:.3}s, \
         on {on_secs:.3}s -> x{obs_overhead:.2} ({emissions} emissions observed, \
         snapshots bit-identical across 1/2/4/8 threads) ({out_path})",
        w.len()
    );
}
