//! Parameter sweeps over the evaluation's ranges (§7.1): table cardinality
//! `N` and join selectivity `σ`. No single figure in the paper plots these
//! directly, but the experimental settings call them out; this driver shows
//! how the five systems scale along both axes.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin sweep -- [--axis n|sigma]
//!     [--dist independent] [--contract 2] [--json] [--trace <dir>]
//!     [--metrics <dir>] [--faults <spec>]
//!     [--validation reject|quarantine|clamp]
//! ```

use caqe_bench::report::{
    cli_arg, cli_chaos, cli_flag, cli_metrics, cli_parse, cli_threads, cli_trace, render_jsonl,
    render_table,
};
use caqe_bench::{run_comparison_observed, ComparisonRow, ExperimentConfig};
use caqe_data::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let axis = cli_arg(&args, "--axis").unwrap_or_else(|| "n".to_string());
    let dist = cli_arg(&args, "--dist")
        .map(|d| match Distribution::parse(&d) {
            Some(dist) => dist,
            None => {
                eprintln!(
                    "bad --dist value `{d}` (expected independent|correlated|anticorrelated)"
                );
                std::process::exit(2);
            }
        })
        .unwrap_or(Distribution::Independent);
    let contract: usize = cli_parse(&args, "--contract", 2);
    let json = cli_flag(&args, "--json");
    let (faults, validation) = cli_chaos(&args);
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);
    // Sweep points share every label ingredient except the swept value, so
    // each point traces into its own subdirectory.
    let point_dir = |tag: &str| trace_dir.as_ref().map(|d| d.join(tag));
    let point_metrics = |tag: &str| metrics_dir.as_ref().map(|d| d.join(tag));

    let mut rows: Vec<ComparisonRow> = Vec::new();
    match axis.as_str() {
        "n" => {
            for n in [500usize, 1000, 2000, 4000] {
                let mut cfg = ExperimentConfig::new(dist, contract);
                cfg.parallelism = cli_threads(&args);
                cfg.faults = faults;
                cfg.validation = validation;
                cfg.n = n;
                cfg.reference_secs = Some(cfg.reference_seconds());
                let tag = format!("n{n}");
                rows.extend(run_comparison_observed(
                    &cfg,
                    point_dir(&tag).as_deref(),
                    point_metrics(&tag).as_deref(),
                ));
            }
        }
        "sigma" => {
            for sigma in [0.001f64, 0.01, 0.05, 0.1] {
                let mut cfg = ExperimentConfig::new(dist, contract);
                cfg.parallelism = cli_threads(&args);
                cfg.faults = faults;
                cfg.validation = validation;
                cfg.n = 1500;
                cfg.sigma = sigma;
                cfg.reference_secs = Some(cfg.reference_seconds());
                let tag = format!("sigma{}", sigma.to_string().replace('.', "p"));
                rows.extend(run_comparison_observed(
                    &cfg,
                    point_dir(&tag).as_deref(),
                    point_metrics(&tag).as_deref(),
                ));
            }
        }
        other => panic!("--axis must be n or sigma, got {other}"),
    }

    if json {
        println!("{}", render_jsonl(&rows));
    } else {
        print!(
            "{}",
            render_table(
                &format!("Scaling sweep over {axis} ({}, C{contract})", dist.label()),
                &rows
            )
        );
        // Time scaling summary: CAQE's advantage should grow with work.
        println!("-- CAQE time advantage over JFSL --");
        let caqe: Vec<&ComparisonRow> = rows.iter().filter(|r| r.strategy == "CAQE").collect();
        let jfsl: Vec<&ComparisonRow> = rows.iter().filter(|r| r.strategy == "JFSL").collect();
        for (c, j) in caqe.iter().zip(&jfsl) {
            println!(
                "  point: joins {:>9} vs {:>9}  time x{:>5.1}",
                c.join_results,
                j.join_results,
                j.virtual_seconds / c.virtual_seconds.max(1e-9)
            );
        }
    }
}
