//! Wall-clock serving driver for the `caqe-serve` front door (DESIGN.md
//! §18): soak runs under chaos plans, and deterministic run/kill/restore
//! cycles whose per-session digests CI diffs for restore equivalence.
//!
//! ```text
//! # Soak: concurrent clients + worker thread under a seeded fault plan.
//! cargo run --release -p caqe-bench --bin serve_soak -- --mode soak
//!     [--n <rows>] [--clients <c>] [--submits <k>] [--bound <b>]
//!     [--batch <e>] [--faults <spec>] [--out <json>]
//!
//! # Run: submit --sessions queries upfront, drain deterministically.
//! cargo run --release -p caqe-bench --bin serve_soak -- --mode run
//!     --sessions <s> [--kill-after-epochs <k> | --sigterm-wait]
//!     [--restore] [--snapshot <path>] [--digest-out <path>]
//!     [--trace <dir>] [--metrics <dir>]
//! ```
//!
//! The restore-equivalence protocol: run A drains uninterrupted and writes
//! its digest file; run B is killed after `--kill-after-epochs` (or by
//! SIGTERM with `--sigterm-wait`) and snapshots; run C `--restore`s the
//! snapshot, drains the remainder and writes its digest file. A and C must
//! be byte-identical — the snapshot carries completed-session digests, so
//! C's file covers every session.

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_faults, cli_flag, cli_metrics, cli_parse, cli_trace};
use caqe_bench::ExperimentConfig;
use caqe_core::{EngineConfig, QuerySpec};
use caqe_data::{Distribution, Table, ValidationPolicy};
use caqe_faults::FaultPlan;
use caqe_serve::{mix_request, run_soak, CaqeServer, ServeConfig, SoakConfig, SubmitResponse};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RECEIVED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigterm(_sig: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Installs a SIGTERM handler that latches a flag (no libc crate in the
    /// build environment — the raw syscall wrapper is all we need).
    pub fn install() {
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }

    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

fn write_digests(path: &Path, digests: &[(u64, u64)]) {
    let mut out = String::new();
    for (id, digest) in digests {
        out.push_str(&format!("{id} {digest:016x}\n"));
    }
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("cannot write digest file {}: {e}", path.display());
        std::process::exit(2);
    }
}

fn write_artifacts(server: &CaqeServer, trace: Option<&Path>, metrics: Option<&Path>) {
    let events = server.server_events();
    if let Some(dir) = trace {
        if let Err(e) = caqe_trace::write_trace(dir, "server", &events) {
            eprintln!("cannot write trace into {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if let Some(dir) = metrics {
        let reg = server.metrics();
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| {
                std::fs::write(
                    dir.join("server.metrics.json"),
                    format!("{}\n", reg.to_json()),
                )
            })
            .and_then(|()| std::fs::write(dir.join("server.prom"), reg.to_prometheus()));
        if let Err(e) = write {
            eprintln!("cannot write metrics into {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
}

struct Inputs {
    tables: (Table, Table),
    catalog: Vec<QuerySpec>,
    cfg: ExperimentConfig,
}

fn inputs(n: usize) -> Inputs {
    let mut cfg = ExperimentConfig::new(Distribution::Independent, 2);
    cfg.n = n;
    cfg.workload_size = 4;
    cfg.cells_per_table = 8;
    cfg.reference_secs = Some(cfg.reference_seconds());
    let tables = cfg.tables();
    let catalog = cfg.workload().queries().to_vec();
    Inputs {
        tables,
        catalog,
        cfg,
    }
}

fn run_mode(args: &[String]) -> ExitCode {
    let n: usize = cli_parse(args, "--n", 600);
    let sessions: usize = cli_parse(args, "--sessions", 12);
    let batch: usize = cli_parse(args, "--batch", 4);
    let kill_after: Option<u64> = cli_arg(args, "--kill-after-epochs").map(|s| match s.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad --kill-after-epochs `{s}`: {e}");
            std::process::exit(2);
        }
    });
    let restore = cli_flag(args, "--restore");
    let sigterm_wait = cli_flag(args, "--sigterm-wait");
    let snapshot = cli_arg(args, "--snapshot").map(PathBuf::from);
    let digest_out = cli_arg(args, "--digest-out").map(PathBuf::from);
    let trace = cli_trace(args);
    let metrics = cli_metrics(args);

    let inp = inputs(n);
    let serve = ServeConfig {
        // Run mode admits the whole session list upfront; the bound is not
        // under test here (the soak covers backpressure).
        queue_bound: sessions.max(1),
        epoch_batch: batch,
        ..ServeConfig::default()
    };
    let engine = EngineConfig::caqe();

    let server = if restore {
        let Some(path) = snapshot.as_deref() else {
            eprintln!("--restore requires --snapshot <path>");
            return ExitCode::from(2);
        };
        match CaqeServer::restore(
            inp.tables,
            inp.catalog.clone(),
            inp.cfg.exec(),
            engine,
            serve,
            path,
        ) {
            Ok((server, snap)) => {
                println!(
                    "restored snapshot v{}: {} completed, {} queued, next session {}",
                    snap.version,
                    snap.completed.len(),
                    snap.queued.len(),
                    snap.next_session
                );
                server
            }
            Err(e) => {
                eprintln!("restore failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let server = CaqeServer::new(
            inp.tables,
            inp.catalog.clone(),
            inp.cfg.exec(),
            engine,
            serve,
        );
        for i in 0..sessions {
            match server.submit(mix_request(inp.catalog.len(), 0, i)) {
                SubmitResponse::Accepted { .. } => {}
                SubmitResponse::Rejected { reason, .. } => {
                    eprintln!("upfront submission {i} rejected: {reason}");
                    return ExitCode::from(2);
                }
            }
        }
        server
    };

    if sigterm_wait {
        #[cfg(unix)]
        {
            sigterm::install();
            loop {
                if sigterm::received() {
                    break;
                }
                if server.run_epoch().is_none() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            let Some(path) = snapshot.as_deref() else {
                eprintln!("--sigterm-wait requires --snapshot <path>");
                return ExitCode::from(2);
            };
            match server.shutdown_to_snapshot(path) {
                Ok(snap) => println!(
                    "snapshot after SIGTERM: {} completed, {} queued",
                    snap.completed.len(),
                    snap.queued.len()
                ),
                Err(e) => {
                    eprintln!("snapshot failed: {e}");
                    return ExitCode::from(2);
                }
            }
            write_artifacts(&server, trace.as_deref(), metrics.as_deref());
            return ExitCode::SUCCESS;
        }
        #[cfg(not(unix))]
        {
            eprintln!("--sigterm-wait is only supported on unix");
            return ExitCode::from(2);
        }
    }

    if let Some(k) = kill_after {
        for _ in 0..k {
            if server.run_epoch().is_none() {
                break;
            }
        }
        let Some(path) = snapshot.as_deref() else {
            eprintln!("--kill-after-epochs requires --snapshot <path>");
            return ExitCode::from(2);
        };
        match server.shutdown_to_snapshot(path) {
            Ok(snap) => println!(
                "snapshot after {k} epoch(s): {} completed, {} queued",
                snap.completed.len(),
                snap.queued.len()
            ),
            Err(e) => {
                eprintln!("snapshot failed: {e}");
                return ExitCode::from(2);
            }
        }
        write_artifacts(&server, trace.as_deref(), metrics.as_deref());
        return ExitCode::SUCCESS;
    }

    let reports = server.drain();
    let failed = reports.iter().filter(|r| !r.succeeded).count();
    println!(
        "drained {} epoch(s) ({failed} failed), mean satisfaction {:.3}",
        reports.len(),
        server.mean_satisfaction()
    );
    if let Some(path) = &digest_out {
        write_digests(path, &server.session_digests());
    }
    write_artifacts(&server, trace.as_deref(), metrics.as_deref());
    if failed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn soak_mode(args: &[String]) -> ExitCode {
    let n: usize = cli_parse(args, "--n", 600);
    let clients: usize = cli_parse(args, "--clients", 4);
    let submits: usize = cli_parse(args, "--submits", 6);
    let bound: usize = cli_parse(args, "--bound", 6);
    let batch: usize = cli_parse(args, "--batch", 3);
    let out = cli_arg(args, "--out");
    let faults = {
        let plan = cli_faults(args);
        if plan.is_active() {
            plan
        } else {
            FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.10, 8.0)
                .with_estimator_noise(0.20, 4.0)
                .with_corruption(0.02)
        }
    };
    caqe_faults::silence_injected_panics();

    let inp = inputs(n);
    let clean_exec = inp.cfg.exec();
    let chaos_exec = inp
        .cfg
        .exec()
        .with_faults(faults)
        .with_validation(ValidationPolicy::Quarantine);
    let soak = SoakConfig {
        clients,
        submits_per_client: submits,
        serve: ServeConfig {
            queue_bound: bound,
            epoch_batch: batch,
            ..ServeConfig::default()
        },
        ..SoakConfig::default()
    };
    let report = run_soak(
        &inp.tables,
        &inp.catalog,
        &clean_exec,
        &chaos_exec,
        &EngineConfig::caqe(),
        &soak,
    );
    println!(
        "soak: {} submitted, {} accepted, {} rejected, {} completed, \
         {} failed, {} expired, {} unresolved",
        report.submitted,
        report.accepted,
        report.rejected,
        report.completed,
        report.failed,
        report.expired,
        report.unresolved
    );
    println!(
        "      peak depth {}/{}  epochs {}  retention {:.3} \
         (chaos {:.3} / clean {:.3})  wall {:.2}s",
        report.peak_depth,
        report.queue_bound,
        report.epochs,
        report.retention,
        report.mean_satisfaction,
        report.clean_mean_satisfaction,
        report.wall_seconds
    );
    if let Some(path) = out {
        let mut w = ObjectWriter::new();
        w.string("bench", "serve_soak")
            .uint("n", n as u64)
            .uint("clients", clients as u64)
            .uint("submits_per_client", submits as u64)
            .string("faults", &faults.to_spec())
            .uint("submitted", report.submitted)
            .uint("accepted", report.accepted)
            .uint("rejected", report.rejected)
            .uint("completed", report.completed)
            .uint("failed", report.failed)
            .uint("expired", report.expired)
            .uint("unresolved", report.unresolved)
            .uint("queue_depth_peak", report.peak_depth)
            .uint("queue_bound", report.queue_bound)
            .uint("epochs", report.epochs)
            .number("mean_satisfaction", report.mean_satisfaction)
            .number("clean_mean_satisfaction", report.clean_mean_satisfaction)
            .number("soak_sat_retention", report.retention)
            .number("wall_seconds", report.wall_seconds);
        if let Err(e) = std::fs::write(&path, format!("{}\n", w.finish())) {
            eprintln!("cannot write soak report {path}: {e}");
            return ExitCode::from(2);
        }
    }
    // Liveness and backpressure are hard gates in every mode, not just in
    // the test suite: an unresolved session or a bound violation fails CI.
    if report.unresolved > 0 {
        eprintln!(
            "LIVENESS VIOLATION: {} session(s) unresolved",
            report.unresolved
        );
        return ExitCode::FAILURE;
    }
    if report.peak_depth > report.queue_bound {
        eprintln!(
            "BOUND VIOLATION: peak depth {} exceeds bound {}",
            report.peak_depth, report.queue_bound
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli_arg(&args, "--mode").as_deref().unwrap_or("soak") {
        "soak" => soak_mode(&args),
        "run" => run_mode(&args),
        other => {
            eprintln!("unknown --mode `{other}` (expected soak|run)");
            ExitCode::from(2)
        }
    }
}
