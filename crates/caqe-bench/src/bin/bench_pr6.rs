//! Block-bitset dominance kernel speedup plus end-to-end thread sweep over
//! the deterministically sharded shared-plan insert, recorded in
//! `BENCH_PR6.json`.
//!
//! Two measurements over the BENCH_PR3 replay workload (same tables:
//! n=2500 per side, seed 0xBE11C; same eight queries):
//!
//! * **kernel** — replays every query's dominance work (BNL, the SFS
//!   filter scan and the streaming skyline insert) through the
//!   forced-scalar kernels and through the block-bitset dispatch path
//!   (DESIGN.md §15). The join output and the SFS monotone presort are
//!   materialized once outside the timed region — they are uncharged
//!   physical preprocessing, byte-identical in both arms. Both arms are
//!   verified to report the *identical* results, `Stats` and virtual ticks
//!   before any timing is reported — the charged comparison sequence is
//!   part of the determinism contract, so the block path may only be
//!   faster, never observably different.
//! * **end-to-end** — full engine runs at 1/2/4/8 workers with the sharded
//!   shared-plan insert phase active; all outcomes are asserted
//!   bit-identical across thread counts.
//!
//! `host_cores` is recorded honestly; on a single-core host the thread
//! sweep prices the sharding *overhead* rather than its scaling, and the
//! `measures` field says which one this artifact captured.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin bench_pr6 -- [--n <rows>]
//!     [--cells <per-table>] [--reps <r>] [--out <path>]
//! ```

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_parse};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, RunOutcome,
    Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{
    hash_join_project_store, sfs_order, skyline_bnl_store, skyline_bnl_store_scalar,
    skyline_sfs_presorted, skyline_sfs_presorted_scalar, IncrementalSkyline, JoinSpec, MappingFn,
    MappingSet,
};
use caqe_trace::NoopSink;
use caqe_types::{DimMask, DomKernel, PointStore, SimClock, Stats};
use std::num::NonZeroUsize;
use std::time::Instant;

/// Same four mapping variants as the BENCH_PR2/PR3 workloads.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

/// The eight-query BENCH_PR2/PR3 workload: four mapping variants × two
/// preference subspaces, alternating join columns.
fn workload() -> Workload {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    Workload::new(queries)
}

/// One query's dominance-kernel replay: everything both arms must agree on.
#[derive(PartialEq, Debug)]
struct Replay {
    bnl: Vec<usize>,
    sfs: Vec<usize>,
    incremental_tags: Vec<u64>,
    stats: Stats,
    ticks: u64,
}

/// Replays one query's dominance kernels over its pre-joined points,
/// either through the forced-scalar entry points or through the
/// dispatching ones (which pick the block-bitset path when profitable).
/// The SFS filter order is precomputed by the caller: the monotone presort
/// is uncharged physical preprocessing shared verbatim by both arms, so
/// timing it would only dilute the dominance-kernel ratio.
fn replay_kernels(store: &PointStore, pref: DimMask, order: &[usize], block: bool) -> Replay {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    let kernel = DomKernel::new(pref, store.stride());
    let (bnl, sfs) = if block {
        (
            skyline_bnl_store(store, &kernel, &mut clock, &mut stats),
            skyline_sfs_presorted(store, &kernel, order, &mut clock, &mut stats),
        )
    } else {
        (
            skyline_bnl_store_scalar(store, &kernel, &mut clock, &mut stats),
            skyline_sfs_presorted_scalar(store, &kernel, order, &mut clock, &mut stats),
        )
    };
    let mut sky = IncrementalSkyline::new(pref);
    for i in 0..store.len() {
        if block {
            sky.insert(i as u64, store.at(i), &mut clock, &mut stats);
        } else {
            sky.insert_scalar(i as u64, store.at(i), &mut clock, &mut stats);
        }
    }
    Replay {
        bnl,
        sfs,
        incremental_tags: sky.tags().collect(),
        stats,
        ticks: clock.ticks(),
    }
}

/// Best-of-`reps` wall seconds for replaying every query through one arm.
fn measure_kernels(
    joined: &[(PointStore, DimMask, Vec<usize>)],
    reps: usize,
    block: bool,
) -> (f64, Vec<Replay>) {
    let mut best = f64::INFINITY;
    let mut replays = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out: Vec<Replay> = joined
            .iter()
            .map(|(store, pref, order)| replay_kernels(store, *pref, order, block))
            .collect();
        best = best.min(start.elapsed().as_secs_f64());
        replays = Some(out);
    }
    (best, replays.expect("reps >= 1"))
}

/// Best-of-`reps` wall seconds for a full engine run at one worker count.
fn measure_engine(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome) {
    let events = EventStream::empty();
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            &events,
            exec,
            &EngineConfig::caqe(),
            0,
            &mut NoopSink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    (best, outcome.expect("reps >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let reps: usize = cli_parse(&args, "--reps", 5);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR6.json".to_string());

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let w = workload();

    // --- Kernel arm: block-bitset vs scalar dominance over the join. ---
    // The join output and the SFS filter order are materialized once,
    // outside the timed region: both are byte-identical in both arms
    // (uncharged physical preprocessing), and timing them would only
    // dilute the dominance-kernel ratio the artifact exists to capture.
    let joined: Vec<(PointStore, DimMask, Vec<usize>)> = w
        .queries()
        .iter()
        .map(|spec| {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            let join = hash_join_project_store(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let kernel = DomKernel::new(spec.pref, join.store.stride());
            let order = sfs_order(&join.store, &kernel);
            (join.store, spec.pref, order)
        })
        .collect();
    let join_results: u64 = joined.iter().map(|(s, _, _)| s.len() as u64).sum();

    let (scalar_secs, scalar_out) = measure_kernels(&joined, reps, false);
    let (block_secs, block_out) = measure_kernels(&joined, reps, true);

    // Identity gate: the block path must perform the identical charged
    // comparison sequence — same results, same counts, same virtual ticks.
    let mut dom_comparisons = 0u64;
    for (q, (a, b)) in scalar_out.iter().zip(&block_out).enumerate() {
        assert_eq!(a.bnl, b.bnl, "q{q}: BNL skyline diverged");
        assert_eq!(a.sfs, b.sfs, "q{q}: SFS skyline diverged");
        assert_eq!(
            a.incremental_tags, b.incremental_tags,
            "q{q}: incremental skyline diverged"
        );
        // Forced-scalar twins record no dispatch decisions, so the
        // diagnostic counters legitimately differ between the arms; every
        // charged observable must still match exactly.
        assert_eq!(
            a.stats.observable(),
            b.stats.observable(),
            "q{q}: stats diverged"
        );
        assert!(
            b.stats.block_kernel_ops > 0,
            "q{q}: dispatch arm never took the block path"
        );
        assert_eq!(a.ticks, b.ticks, "q{q}: virtual clock diverged");
        dom_comparisons += a.stats.dom_comparisons;
    }
    let block_speedup = scalar_secs / block_secs;

    // --- End-to-end arm: sharded shared-plan insert across worker counts. ---
    let thread_counts = [1usize, 2, 4, 8];
    let mut e2e_secs = Vec::new();
    let mut baseline: Option<RunOutcome> = None;
    for &k in &thread_counts {
        let exec = ExecConfig::default()
            .with_target_cells(n, cells)
            .with_parallelism(Some(k));
        let (secs, out) = measure_engine(&r, &t, &w, &exec, reps);
        if let Some(base) = &baseline {
            assert_eq!(
                base.per_query.len(),
                out.per_query.len(),
                "{k} threads: query count diverged"
            );
            for q in 0..base.per_query.len() {
                assert_eq!(
                    base.per_query[q].results, out.per_query[q].results,
                    "{k} threads: query {q} results diverged from 1 thread"
                );
            }
            assert_eq!(base.stats, out.stats, "{k} threads: stats diverged");
            assert_eq!(
                base.virtual_seconds, out.virtual_seconds,
                "{k} threads: virtual time diverged"
            );
        } else {
            baseline = Some(out);
        }
        e2e_secs.push(secs);
    }
    let base_outcome = baseline.expect("at least one thread count");

    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    // On a single-core host extra workers can only add coordination cost:
    // the sweep then measures the sharding overhead, not its scaling.
    let measures = if cores > 1 { "scaling" } else { "overhead" };
    let fmt_list = |xs: &[f64]| {
        let inner: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
        format!("[{}]", inner.join(","))
    };

    let mut obj = ObjectWriter::new();
    obj.string("bench", "bench_pr6")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("queries", w.len() as u64)
        .uint("reps", reps as u64)
        .uint("host_cores", cores as u64)
        .string("measures", measures)
        .number("kernel_scalar_wall_seconds", scalar_secs)
        .number("kernel_block_wall_seconds", block_secs)
        .number("kernel_block_speedup", block_speedup)
        .uint("join_results", join_results)
        .uint("dom_comparisons", dom_comparisons)
        .bool("counts_identical", true)
        .raw(
            "e2e_threads",
            &format!(
                "[{}]",
                thread_counts
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .raw("e2e_wall_seconds", &fmt_list(&e2e_secs))
        .uint("e2e_results", base_outcome.total_results() as u64)
        .number("e2e_virtual_seconds", base_outcome.virtual_seconds)
        .bool("e2e_bit_identical", true);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "kernel replay, n={n}, {} queries: scalar {scalar_secs:.3}s, block \
         {block_secs:.3}s -> {block_speedup:.2}x ({dom_comparisons} dom cmps, counts \
         identical); e2e threads {thread_counts:?} -> {} wall seconds on {cores} \
         core(s), bit-identical ({out_path})",
        w.len(),
        fmt_list(&e2e_secs),
    );
}
