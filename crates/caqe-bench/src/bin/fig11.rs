//! Figure 11: average satisfaction as the workload grows
//! (`|S_Q| ∈ {1, 3, 5, 7, 9, 11}`), independent data, contracts C2 (11.a)
//! and C3 (11.b).
//!
//! ```text
//! cargo run --release -p caqe-bench --bin fig11 -- [--n <rows>] [--json] [--trace <dir>]
//!                                                  [--metrics <dir>] [--faults <spec>]
//!                                                  [--validation reject|quarantine|clamp]
//! ```

use caqe_bench::report::{
    cli_arg, cli_chaos, cli_flag, cli_metrics, cli_threads, cli_trace, render_jsonl, render_table,
};
use caqe_bench::{run_comparison_observed, ComparisonRow, ExperimentConfig};
use caqe_data::Distribution;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = cli_flag(&args, "--json");
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);
    let (faults, validation) = cli_chaos(&args);
    let sizes = [1usize, 3, 5, 7, 9, 11];

    for contract in [2usize, 3] {
        let mut rows: Vec<ComparisonRow> = Vec::new();
        // The paper fixes the contract parameters (t_C1 = t_C3 = 40 s)
        // across workload sizes; calibrate once against the full-size
        // workload and hold the deadline constant as |S_Q| shrinks.
        let mut reference: Option<f64> = None;
        for &size in &sizes {
            let mut cfg = ExperimentConfig::new(Distribution::Independent, contract);
            cfg.parallelism = cli_threads(&args);
            cfg.faults = faults;
            cfg.validation = validation;
            cfg.workload_size = size;
            if let Some(n) = cli_arg(&args, "--n") {
                cfg.n = match n.parse() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bad --n value `{n}`: {e}");
                        std::process::exit(2);
                    }
                };
            }
            let r = *reference.get_or_insert_with(|| {
                let mut probe = cfg.clone();
                probe.workload_size = sizes.last().copied().unwrap_or(cfg.workload_size);
                probe.reference_seconds()
            });
            cfg.reference_secs = Some(r);
            rows.extend(run_comparison_observed(
                &cfg,
                trace_dir.as_deref(),
                metrics_dir.as_deref(),
            ));
        }
        if json {
            println!("{}", render_jsonl(&rows));
            continue;
        }
        let panel = if contract == 2 {
            "Figure 11.a (C2, independent)"
        } else {
            "Figure 11.b (C3, independent)"
        };
        print!("{}", render_table(panel, &rows));

        // The paper's headline: the relative satisfaction drop from
        // |S_Q| = 1 to |S_Q| = 11 per system.
        println!("-- satisfaction drop |S_Q|=1 → 11 --");
        for strat in ["CAQE", "S-JFSL", "JFSL", "ProgXe+", "SSMJ"] {
            let at = |k: usize| {
                rows.iter()
                    .find(|r| r.strategy == strat && r.workload_size == k)
                    .map(|r| r.avg_satisfaction)
                    .unwrap_or(f64::NAN)
            };
            let (s1, s11) = (at(1), at(11));
            println!(
                "  {:<9} {:.3} → {:.3}  (drop {:.0}%)",
                strat,
                s1,
                s11,
                100.0 * (s1 - s11) / s1.max(1e-9)
            );
        }
        println!();
    }
}
