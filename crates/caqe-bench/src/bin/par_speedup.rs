//! Wall-clock speedup of the deterministic parallel layer, plus the cost of
//! turning tracing on.
//!
//! Runs CAQE on a multi-join-group workload serially and with a pinned
//! worker count, verifies the outcomes are bit-identical, measures the same
//! parallel run once more with a recording trace sink (the no-op sink is the
//! compiled-out default), and records everything in `BENCH_PR2.json`.
//!
//! ```text
//! cargo run --release -p caqe-bench --bin par_speedup -- [--n <rows>]
//!     [--threads <k>] [--cells <per-table>] [--reps <r>] [--out <path>]
//!     [--trace <dir>] [--metrics <dir>] [--faults <spec>] [--events <spec>]
//!     [--validation reject|quarantine|clamp]
//! ```
//!
//! With `--trace`, the traced parallel run exports under the label
//! `parallel` — CI byte-diffs that JSONL across thread counts. With
//! `--metrics`, the same run's metrics snapshot exports under the same
//! label (CI byte-diffs it too). With `--events` (e.g.
//! `admit@500000=0,depart@900000=1`) the run becomes an online session:
//! admissions draw from the workload's own query pool by index, and the
//! bit-identity assertions then cover the churn path too.

use caqe_bench::json::ObjectWriter;
use caqe_bench::report::{cli_arg, cli_chaos, cli_metrics, cli_parse, cli_trace};
use caqe_contract::Contract;
use caqe_core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, RunOutcome,
    Workload,
};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::{MappingFn, MappingSet};
use caqe_trace::{NoopSink, RecordingSink};
use caqe_types::DimMask;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Four distinct mapping sets (4 output dims each): combined with two join
/// columns they split an eight-query workload into four join groups, the
/// unit of parallelism in `build_groups`.
fn mapping_variant(v: usize) -> MappingSet {
    let fns = (0..4)
        .map(|j| {
            let mut wr = vec![0.0; 2];
            let mut wt = vec![0.0; 2];
            wr[j % 2] = 1.0 + 0.05 * v as f64;
            wt[(j + v) % 2] = 1.0 + 0.1 * j as f64;
            MappingFn::new(wr, wt, 0.0)
        })
        .collect();
    MappingSet::new(fns)
}

fn workload() -> Workload {
    let mut queries = Vec::new();
    for v in 0..4 {
        let mapping = mapping_variant(v);
        for (pref, priority) in [
            (DimMask::from_dims([0, 1]), 0.8),
            (DimMask::from_dims([2, 3]), 0.4),
        ] {
            queries.push(QuerySpec {
                join_col: v % 2,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: Contract::LogDecay,
            });
        }
    }
    Workload::new(queries)
}

/// Best-of-`reps` wall seconds plus the (identical) outcome of the run.
fn measure(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            events,
            exec,
            &EngineConfig::caqe(),
            0,
            &mut NoopSink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
    }
    (best, outcome.expect("reps >= 1"))
}

/// Same as [`measure`] but with a live recording sink: the overhead of
/// tracing relative to the compiled-out no-op path.
fn measure_traced(
    r: &caqe_data::Table,
    t: &caqe_data::Table,
    w: &Workload,
    events: &EventStream,
    exec: &ExecConfig,
    reps: usize,
) -> (f64, RunOutcome, RecordingSink) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    let mut recorded = None;
    for _ in 0..reps {
        let mut sink = RecordingSink::new();
        let start = Instant::now();
        let o = try_run_engine_online_traced(
            "CAQE",
            r,
            t,
            w,
            events,
            exec,
            &EngineConfig::caqe(),
            0,
            &mut sink,
        )
        .expect("bench inputs are clean");
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(o);
        recorded = Some(sink);
    }
    (
        best,
        outcome.expect("reps >= 1"),
        recorded.expect("reps >= 1"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = cli_parse(&args, "--n", 2500);
    let threads: usize = cli_parse(&args, "--threads", 4);
    let cells: usize = cli_parse(&args, "--cells", 22);
    let reps: usize = cli_parse(&args, "--reps", 3);
    let out_path = cli_arg(&args, "--out").unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let trace_dir = cli_trace(&args);
    let metrics_dir = cli_metrics(&args);

    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.03])
        .with_seed(0xBE11C);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let w = workload();
    let events = match cli_arg(&args, "--events") {
        Some(spec) => match EventStream::parse(&spec, w.queries()) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("bad --events spec `{spec}`: {e}");
                std::process::exit(2);
            }
        },
        None => EventStream::empty(),
    };
    let (faults, validation) = cli_chaos(&args);
    let serial_exec = ExecConfig::default()
        .with_target_cells(n, cells)
        .with_faults(faults)
        .with_validation(validation);
    let par_exec = serial_exec.with_parallelism(Some(threads));

    let (serial_secs, serial_out) = measure(&r, &t, &w, &events, &serial_exec, reps);
    let (par_secs, par_out) = measure(&r, &t, &w, &events, &par_exec, reps);
    let (traced_secs, traced_out, sink) = measure_traced(&r, &t, &w, &events, &par_exec, reps);

    // Parallelism must not change a single observable number.
    assert_eq!(serial_out.stats, par_out.stats, "stats diverged");
    assert_eq!(
        serial_out.virtual_seconds.to_bits(),
        par_out.virtual_seconds.to_bits(),
        "virtual clock diverged"
    );
    for (a, b) in serial_out.per_query.iter().zip(&par_out.per_query) {
        assert_eq!(a.results, b.results, "results diverged");
        assert_eq!(a.emissions, b.emissions, "emissions diverged");
    }
    // Nor must the trace sink: recording is observation, not interference.
    assert_eq!(par_out.stats, traced_out.stats, "tracing changed stats");
    assert_eq!(
        par_out.virtual_seconds.to_bits(),
        traced_out.virtual_seconds.to_bits(),
        "tracing moved the virtual clock"
    );

    if let Some(dir) = &trace_dir {
        caqe_trace::write_trace(dir, "parallel", sink.events()).expect("trace export failed");
    }
    if let Some(dir) = &metrics_dir {
        let collector = caqe_bench::obs::collect(&w, sink.events(), &traced_out);
        caqe_bench::obs::write_snapshot(dir, "parallel", &collector)
            .expect("metrics export failed");
    }

    let groups = w
        .queries()
        .iter()
        .map(|q| (q.join_col, format!("{:?}", q.mapping)))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let speedup = serial_secs / par_secs;
    let trace_overhead = traced_secs / par_secs;
    // On a host with fewer cores than workers the ratio measures pure
    // threading overhead (~1.0 is ideal), not scaling; the artifact says
    // which one it reports instead of leaving a meaningless "speedup".
    let measures = if cores < threads {
        "overhead"
    } else {
        "scaling"
    };
    let mut obj = ObjectWriter::new();
    obj.string("bench", "par_speedup")
        .uint("n", n as u64)
        .uint("cells_per_table", cells as u64)
        .uint("join_groups", groups as u64)
        .uint("queries", w.len() as u64)
        .uint("threads", threads as u64)
        .uint("host_cores", cores as u64)
        .uint("reps", reps as u64)
        .string("measures", measures)
        .number("serial_wall_seconds", serial_secs)
        .number("parallel_wall_seconds", par_secs)
        .number("speedup", speedup)
        .number("traced_wall_seconds", traced_secs)
        .number("trace_overhead", trace_overhead)
        .uint("trace_events", sink.events().len() as u64)
        .uint("session_events", events.len() as u64)
        .number("virtual_seconds", serial_out.virtual_seconds)
        .uint("join_results", serial_out.stats.join_results)
        .bool("bit_identical", true);
    let json = obj.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write bench json");
    println!(
        "{groups} join groups, n={n}, {cores} host cores ({measures}): serial {serial_secs:.3}s, \
         {threads} threads {par_secs:.3}s -> {speedup:.2}x; tracing {traced_secs:.3}s \
         (x{trace_overhead:.2}, {} events) ({out_path})",
        sink.events().len()
    );
}
