//! Metrics-snapshot plumbing shared by the bench drivers (DESIGN.md §16).
//!
//! Builds the SLO monitor configuration from a workload's contracts,
//! folds a recorded trace plus end-of-run [`Stats`](caqe_types::Stats)
//! into an [`ObsCollector`], and writes the two snapshot files
//! (`<label>.metrics.json`, `<label>.prom`) every `--metrics <dir>` driver
//! produces. Snapshots derive only from virtual-clock observables, so they
//! are byte-identical at any `--threads` setting.

use caqe_core::{RunOutcome, Workload};
use caqe_obs::{ObsCollector, ObsConfig};
use caqe_trace::TraceEvent;
use caqe_types::SimClock;
use std::path::Path;

/// Running-satisfaction floor the SLO monitor holds every query to.
///
/// Matches the spirit of the degradation policy's satisfaction floor: a
/// query projected to sit below half satisfaction past its contract budget
/// is flagged at risk.
pub const DEFAULT_SAT_TARGET: f64 = 0.5;

/// The monitor configuration for a workload, calibrated to the default
/// cost model's tick rate.
pub fn obs_config(workload: &Workload) -> ObsConfig {
    let tps = SimClock::default().model().ticks_per_second;
    let contracts: Vec<_> = workload
        .queries()
        .iter()
        .map(|q| q.contract.clone())
        .collect();
    ObsConfig::from_contracts(&contracts, tps, DEFAULT_SAT_TARGET)
}

/// Folds one run's recorded events and outcome into a fresh collector.
pub fn collect(workload: &Workload, events: &[TraceEvent], outcome: &RunOutcome) -> ObsCollector {
    let mut c = ObsCollector::new(obs_config(workload));
    c.ingest_events(events);
    c.ingest_stats(&outcome.stats);
    c
}

/// Writes `<label>.metrics.json` and `<label>.prom` into `dir`.
pub fn write_snapshot(dir: &Path, label: &str, collector: &ObsCollector) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join(format!("{label}.metrics.json")),
        format!("{}\n", collector.snapshot_json()),
    )?;
    std::fs::write(
        dir.join(format!("{label}.prom")),
        collector.snapshot_prometheus(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_contract::Contract;
    use caqe_core::QuerySpec;
    use caqe_operators::{MappingFn, MappingSet};
    use caqe_types::DimMask;

    #[test]
    fn obs_config_tracks_workload_contracts() {
        let mapping = MappingSet::new(vec![
            MappingFn::new(vec![1.0, 0.0], vec![0.0, 1.0], 0.0),
            MappingFn::new(vec![0.0, 1.0], vec![1.0, 0.0], 0.0),
        ]);
        let w = Workload::new(vec![
            QuerySpec {
                join_col: 0,
                mapping: mapping.clone(),
                pref: DimMask::from_dims([0, 1]),
                priority: 1.0,
                contract: Contract::Deadline { t_hard: 2.0 },
            },
            QuerySpec {
                join_col: 0,
                mapping,
                pref: DimMask::from_dims([0, 1]),
                priority: 1.0,
                contract: Contract::LogDecay,
            },
        ]);
        let cfg = obs_config(&w);
        assert_eq!(cfg.queries.len(), 2);
        assert_eq!(cfg.queries[0].label, "C1");
        // 2 s at the default 100k ticks/s.
        assert_eq!(cfg.queries[0].budget_ticks, Some(200_000));
        assert_eq!(cfg.queries[1].budget_ticks, None);
    }
}
