//! Skycube lattice helpers (§4.1, Figure 5).

use caqe_types::ids::QuerySet;
use caqe_types::{DimMask, QueryId};

/// The set of queries a subspace *serves* (Definition 6): `U` serves `Q_i`
/// iff `U ⊆ P_i`, where `P_i` is the query's preference subspace.
pub fn q_serve(subspace: DimMask, query_prefs: &[DimMask]) -> QuerySet {
    let mut s = QuerySet::EMPTY;
    for (i, &p) in query_prefs.iter().enumerate() {
        if subspace.is_subset_of(p) {
            s.insert(QueryId(i as u16));
        }
    }
    s
}

/// All `2^d − 1` non-empty subspaces of the union of the queries' preference
/// dimensions — the full skycube lattice of Figure 5, in ascending level
/// (cardinality) order.
///
/// # Panics
/// Panics if the union spans more than 16 dimensions (the lattice would
/// have > 65535 members; the paper evaluates `d ∈ [2, 5]`).
pub fn skycube_subspaces(query_prefs: &[DimMask]) -> Vec<DimMask> {
    let full = query_prefs
        .iter()
        .fold(DimMask::EMPTY, |acc, &p| acc.union(p));
    let dims: Vec<usize> = full.iter().collect();
    assert!(dims.len() <= 16, "skycube limited to 16 total dimensions");
    let mut out: Vec<DimMask> = Vec::with_capacity((1usize << dims.len()) - 1);
    for bits in 1u32..(1u32 << dims.len()) {
        let mut m = DimMask::EMPTY;
        for (pos, &dim) in dims.iter().enumerate() {
            if (bits >> pos) & 1 == 1 {
                m = m.union(DimMask::singleton(dim));
            }
        }
        out.push(m);
    }
    out.sort_by_key(|m| (m.len(), m.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running workload of Figure 1: four queries over dims d1..d4.
    pub fn figure1_prefs() -> Vec<DimMask> {
        vec![
            DimMask::from_dims([0, 1]),    // Q1: {d1, d2}
            DimMask::from_dims([0, 1, 2]), // Q2: {d1, d2, d3}
            DimMask::from_dims([1, 2]),    // Q3: {d2, d3}
            DimMask::from_dims([1, 2, 3]), // Q4: {d2, d3, d4}
        ]
    }

    #[test]
    fn example12_q_serve() {
        let prefs = figure1_prefs();
        // {d2, d3} contributes to Q2, Q3 and Q4.
        let s = q_serve(DimMask::from_dims([1, 2]), &prefs);
        assert_eq!(s.len(), 3);
        assert!(s.contains(QueryId(1)));
        assert!(s.contains(QueryId(2)));
        assert!(s.contains(QueryId(3)));
        // {d2, d4} contributes only to Q4.
        let s = q_serve(DimMask::from_dims([1, 3]), &prefs);
        assert_eq!(s.len(), 1);
        assert!(s.contains(QueryId(3)));
    }

    #[test]
    fn skycube_has_15_subspaces_for_4_dims() {
        let subs = skycube_subspaces(&figure1_prefs());
        assert_eq!(subs.len(), 15);
        // Ascending level order.
        for w in subs.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn skycube_respects_sparse_dims() {
        // Queries over dims {1, 5}: skycube covers only those dims.
        let prefs = vec![DimMask::from_dims([1, 5])];
        let subs = skycube_subspaces(&prefs);
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&DimMask::singleton(1)));
        assert!(subs.contains(&DimMask::singleton(5)));
        assert!(subs.contains(&DimMask::from_dims([1, 5])));
    }

    #[test]
    fn empty_workload_empty_skycube() {
        assert!(skycube_subspaces(&[]).is_empty());
    }
}
