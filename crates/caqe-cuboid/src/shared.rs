//! Shared skyline maintenance over the min-max cuboid (§4.1, §5.2, §6).
//!
//! [`SharedSkylinePlan`] maintains one incremental skyline per kept subspace
//! and inserts every join result bottom-up (level order). Two pruning ideas
//! keep the maintenance cheap:
//!
//! * **Theorem 1** (under the Distinct Value Attributes assumption): a tuple
//!   that survived in a *child* subspace is guaranteed to survive in the
//!   parent — the "am I dominated?" scan is skipped entirely;
//! * **monotone presorting** (the Sort-Filter-Skyline idea [6]): each
//!   subspace skyline is kept sorted by the sum of its members' values over
//!   the subspace. A dominator always has a strictly smaller sum than its
//!   victim (given distinct values), so rejection tests scan only the
//!   *prefix* below the new tuple's score and eviction tests only the
//!   *suffix* above it.
//!
//! Workloads whose mapping functions can produce tied values should
//! construct the plan with `assume_dva = false`, which disables the
//! Theorem 1 shortcut (the prefix/suffix split remains valid because a
//! dominator's sum is never *larger* — on ties the boundary is included).

use crate::minmax::MinMaxCuboid;
use caqe_parallel::{map_ordered, Threads};
use caqe_types::sig::{sig_relate, SigQuantizer};
use caqe_types::{
    DimMask, DomKernel, DomRelation, PointId, PointStore, QueryId, SimClock, Stats, Value,
};

/// High bit marking a [`PointId`] that, during one [`SharedSkylinePlan::insert_batch`]
/// call, refers to batch candidate `id & !BATCH_SENTINEL` instead of an
/// interned arena point. All sentinels are patched to real ids before the
/// call returns; none ever escapes.
const BATCH_SENTINEL: u32 = 0x8000_0000;

/// Resolves a possibly-sentinel member handle against the plan arena or the
/// in-flight batch slice.
#[inline]
fn member_point<'a>(
    points: &'a PointStore,
    vals: &'a [Value],
    stride: usize,
    pid: PointId,
) -> &'a [Value] {
    if pid.0 & BATCH_SENTINEL != 0 {
        let c = (pid.0 & !BATCH_SENTINEL) as usize;
        &vals[c * stride..(c + 1) * stride]
    } else {
        points.get(pid)
    }
}

/// What one subspace shard reports back from a batch-insert level.
struct ShardOut {
    /// Cuboid index of the subspace this shard owns.
    subspace: usize,
    /// The subspace skyline after processing every candidate.
    sky: SubspaceSky,
    /// The subspace's signature state after the level (returned to the
    /// plan's interned cache), if signature screening is enabled.
    sigs: Option<SubspaceSigs>,
    /// Per batch candidate: admitted into this subspace?
    admitted: Vec<bool>,
    /// `(candidate, evicted tags)` in candidate order.
    evictions: Vec<(usize, Vec<u64>)>,
    /// Dominance comparisons performed (merged into clock/stats in fixed
    /// shard order by the caller).
    comps: u64,
    /// Candidate signatures quantized by this shard (diagnostic, merged in
    /// fixed shard order like `comps`).
    sig_builds: u64,
}

/// Interned per-subspace signature state (DESIGN.md §17): the quantizer
/// derived from the plan-wide bounds plus one signature per skyline entry,
/// maintained in lockstep with `SubspaceSky::entries`. Reused across
/// batches — and thereby across every query mapped to the subspace — until
/// an out-of-band mutation invalidates it.
#[derive(Debug, Clone)]
struct SubspaceSigs {
    quant: SigQuantizer,
    /// `sigs[k]` is the signature of `entries[k]`.
    sigs: Vec<u64>,
}

/// Result of inserting one tuple into the shared plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedInsert {
    /// Bitmask over cuboid-subspace indices where the tuple was admitted.
    pub added_mask: u64,
    /// For each query (indexed by `QueryId`), whether the tuple is now in
    /// that query's skyline (`SKY_{P_i}` of the processed prefix).
    pub in_query_sky: Vec<bool>,
    /// Tags evicted from each query's full preference subspace by this
    /// insertion — previously *provisional* results invalidated by the
    /// non-monotonic nature of skyline-over-join (§1.4).
    pub query_evictions: Vec<(QueryId, Vec<u64>)>,
}

/// One member of a subspace skyline: precomputed score, opaque tag, and a
/// copy-cheap handle into the plan's shared point arena.
#[derive(Debug, Clone, Copy)]
struct Entry {
    score: Value,
    tag: u64,
    point: PointId,
}

/// A subspace skyline kept sorted ascending by monotone score.
#[derive(Debug, Clone, Default)]
struct SubspaceSky {
    entries: Vec<Entry>,
}

impl SubspaceSky {
    fn position(&self, score: Value) -> usize {
        self.entries.partition_point(|e| e.score < score)
    }
}

/// One incremental skyline per min-max-cuboid subspace, with Theorem 1 and
/// presorting-based comparison sharing.
///
/// All member points live in one plan-level [`PointStore`]: a tuple admitted
/// in several subspaces is interned *once* and referenced by [`PointId`]
/// everywhere, instead of cloned per subspace. Per-subspace [`DomKernel`]s
/// precompute each subspace's dimension list once (the stride, and hence the
/// kernels, are learned from the first inserted point).
#[derive(Debug, Clone)]
pub struct SharedSkylinePlan {
    cuboid: MinMaxCuboid,
    skylines: Vec<SubspaceSky>,
    assume_dva: bool,
    points: PointStore,
    kernels: Vec<DomKernel>,
    /// Plan-wide quantization bounds (`lo`, `hi` indexed by full-stride
    /// dimension), set by [`SharedSkylinePlan::enable_sig_cache`]. `None`
    /// disables signature screening entirely.
    sig_bounds: Option<(Vec<Value>, Vec<Value>)>,
    /// Interned per-subspace signature state, maintained by
    /// [`SharedSkylinePlan::insert_batch`] and invalidated by any mutation
    /// that touches `skylines` without keeping signatures in lockstep (the
    /// scalar [`SharedSkylinePlan::insert`] twin; a freshly backfilled
    /// subspace starts empty). One slot per cuboid subspace.
    sig_cache: Vec<Option<SubspaceSigs>>,
}

impl SharedSkylinePlan {
    /// Creates a plan over a cuboid.
    ///
    /// # Panics
    /// Panics if the cuboid keeps more than 64 subspaces (bitmask limit; the
    /// paper's workloads keep ≤ 31 over 5 dimensions).
    pub fn new(cuboid: MinMaxCuboid, assume_dva: bool) -> Self {
        assert!(cuboid.len() <= 64, "cuboid too large for added-mask bits");
        let skylines = (0..cuboid.len()).map(|_| SubspaceSky::default()).collect();
        let sig_cache = (0..cuboid.len()).map(|_| None).collect();
        SharedSkylinePlan {
            cuboid,
            skylines,
            assume_dva,
            points: PointStore::new(0),
            kernels: Vec::new(),
            sig_bounds: None,
            sig_cache,
        }
    }

    /// Enables signature-level dominance screening (DESIGN.md §17) with the
    /// given per-dimension quantization bounds (full-stride `lo`/`hi`, e.g.
    /// the output-region corners the engine already computed). Screening is
    /// purely a wall-clock optimization: every admission, eviction, tick and
    /// counter the plan produces stays byte-identical — the quantizer's
    /// clamped monotone map keeps even out-of-range values sound, so stale
    /// or estimated bounds cost precision, never correctness.
    ///
    /// Any previously interned signature state is dropped (the bounds
    /// changed under it).
    pub fn enable_sig_cache(&mut self, lo: &[Value], hi: &[Value]) {
        self.sig_bounds = Some((lo.to_vec(), hi.to_vec()));
        for slot in &mut self.sig_cache {
            *slot = None;
        }
    }

    /// Whether signature screening is enabled.
    pub fn sig_cache_enabled(&self) -> bool {
        self.sig_bounds.is_some()
    }

    /// The underlying cuboid.
    pub fn cuboid(&self) -> &MinMaxCuboid {
        &self.cuboid
    }

    /// Number of queries in the workload.
    pub fn num_queries(&self) -> usize {
        self.cuboid.num_queries()
    }

    /// Tags currently in query `q`'s skyline (empty for an inactive slot).
    pub fn query_skyline_tags(&self, q: QueryId) -> Vec<u64> {
        if !self.cuboid.is_active(q) {
            return Vec::new();
        }
        let i = self.cuboid.query_subspace(q);
        self.skylines[i].entries.iter().map(|e| e.tag).collect()
    }

    /// `(tag, point)` members of query `q`'s skyline (sorted by monotone
    /// score, best first; empty for an inactive slot).
    pub fn query_skyline_entries(&self, q: QueryId) -> Vec<(u64, Vec<Value>)> {
        if !self.cuboid.is_active(q) {
            return Vec::new();
        }
        let i = self.cuboid.query_subspace(q);
        self.skylines[i]
            .entries
            .iter()
            .map(|e| (e.tag, self.points.get(e.point).to_vec()))
            .collect()
    }

    /// Size of query `q`'s current skyline (0 for an inactive slot).
    pub fn query_skyline_len(&self, q: QueryId) -> usize {
        if !self.cuboid.is_active(q) {
            return 0;
        }
        self.skylines[self.cuboid.query_subspace(q)].entries.len()
    }

    /// Admits a new query into the plan: extends the cuboid per Definition 7
    /// ([`MinMaxCuboid::admit_query`]), splices the surviving per-subspace
    /// skylines into the new index layout without touching them, and
    /// backfills each *freshly added* subspace from `history` — the complete
    /// tag-ordered join output seen so far (row index == insertion tag).
    /// Points already interned for surviving subspaces are reused as-is;
    /// only tuples admitted into a new subspace are interned afresh. The
    /// backfill's dominance tests are charged to `clock`/`stats` like any
    /// other maintenance work (Theorem 1 sharing does not apply: a new
    /// subspace's kept children may not exist yet, so full
    /// Sort-Filter-Skyline scans are used).
    ///
    /// # Panics
    /// Panics if the grown cuboid exceeds 64 subspaces or `pref` is empty.
    pub fn admit_query(
        &mut self,
        pref: DimMask,
        history: &PointStore,
        clock: &mut SimClock,
        stats: &mut Stats,
    ) {
        let mapping = self.cuboid.admit_query(pref);
        assert!(
            self.cuboid.len() <= 64,
            "cuboid too large for added-mask bits"
        );
        let had_kernels = !self.kernels.is_empty();
        let stride = self.points.stride();
        let mut old_sky: Vec<Option<SubspaceSky>> = std::mem::take(&mut self.skylines)
            .into_iter()
            .map(Some)
            .collect();
        let mut old_ker: Vec<Option<DomKernel>> = std::mem::take(&mut self.kernels)
            .into_iter()
            .map(Some)
            .collect();
        let mut old_sig: Vec<Option<SubspaceSigs>> = std::mem::take(&mut self.sig_cache);

        let mut fresh: Vec<usize> = Vec::new();
        for (i, m) in mapping.iter().enumerate() {
            let sub = self.cuboid.subspaces()[i];
            match m {
                Some(old) => {
                    self.skylines.push(old_sky[*old].take().unwrap_or_default());
                    // A carried subspace's entries are untouched below (the
                    // backfill only writes *fresh* subspaces), so its
                    // interned signatures stay valid and travel with it.
                    self.sig_cache.push(old_sig[*old].take());
                    if had_kernels {
                        self.kernels.push(
                            old_ker[*old]
                                .take()
                                .unwrap_or_else(|| DomKernel::new(sub, stride)),
                        );
                    }
                }
                None => {
                    self.skylines.push(SubspaceSky::default());
                    self.sig_cache.push(None);
                    if had_kernels {
                        self.kernels.push(DomKernel::new(sub, stride));
                    }
                    fresh.push(i);
                }
            }
        }
        // Before the first insert the plan has no layout yet: the lazy init
        // in `insert` will build kernels from the grown cuboid, and there is
        // no history to backfill.
        if !had_kernels || history.is_empty() || fresh.is_empty() {
            return;
        }
        // Tuples admitted into several new subspaces are interned once.
        let mut interned: Vec<Option<PointId>> = vec![None; history.len()];
        for &i in &fresh {
            #[allow(clippy::needless_range_loop)] // t indexes history AND interned
            for t in 0..history.len() {
                let point = history.at(t);
                let score: Value = self.kernels[i].score(point);
                let boundary = self.skylines[i]
                    .entries
                    .partition_point(|e| e.score <= score);
                let pos = self.skylines[i].position(score);
                let mut rejected = false;
                for k in 0..boundary {
                    clock.charge_dom_cmps(1);
                    stats.dom_comparisons += 1;
                    let member = self.skylines[i].entries[k].point;
                    if self.kernels[i].relate(self.points.get(member), point)
                        == DomRelation::Dominates
                    {
                        rejected = true;
                        break;
                    }
                }
                if rejected {
                    continue;
                }
                let mut k = pos;
                while k < self.skylines[i].entries.len() {
                    clock.charge_dom_cmps(1);
                    stats.dom_comparisons += 1;
                    let member = self.skylines[i].entries[k].point;
                    if self.kernels[i].relate(point, self.points.get(member))
                        == DomRelation::Dominates
                    {
                        self.skylines[i].entries.remove(k);
                    } else {
                        k += 1;
                    }
                }
                let pid = match interned[t] {
                    Some(p) => p,
                    None => {
                        stats.plan_points_interned += 1;
                        let p = self.points.push(point);
                        interned[t] = Some(p);
                        p
                    }
                };
                self.skylines[i].entries.insert(
                    pos,
                    Entry {
                        score,
                        tag: t as u64,
                        point: pid,
                    },
                );
            }
        }
    }

    /// Retires query `q` from the plan: prunes the cuboid per Definition 7
    /// ([`MinMaxCuboid::depart_query`]) and splices the surviving subspace
    /// skylines down to the new layout. Skylines of dropped subspaces are
    /// discarded; their interned points stay in the arena (it is append-only
    /// by design) and simply become unreferenced.
    ///
    /// # Panics
    /// Panics if `q` is out of range or already departed.
    pub fn depart_query(&mut self, q: QueryId) {
        let mapping = self.cuboid.depart_query(q);
        let had_kernels = !self.kernels.is_empty();
        let stride = self.points.stride();
        let mut old_sky: Vec<Option<SubspaceSky>> = std::mem::take(&mut self.skylines)
            .into_iter()
            .map(Some)
            .collect();
        let mut old_ker: Vec<Option<DomKernel>> = std::mem::take(&mut self.kernels)
            .into_iter()
            .map(Some)
            .collect();
        let mut old_sig: Vec<Option<SubspaceSigs>> = std::mem::take(&mut self.sig_cache);
        for (i, m) in mapping.iter().enumerate() {
            let sub = self.cuboid.subspaces()[i];
            // Depart is subtractive, so every entry is `Some`; degrade to an
            // empty skyline rather than abort if that invariant ever broke.
            let old = m.and_then(|o| old_sky[o].take());
            self.skylines.push(old.unwrap_or_default());
            self.sig_cache.push(m.and_then(|o| old_sig[o].take()));
            if had_kernels {
                let ker = m.and_then(|o| old_ker[o].take());
                self.kernels
                    .push(ker.unwrap_or_else(|| DomKernel::new(sub, stride)));
            }
        }
    }

    /// Inserts a tuple bottom-up through every cuboid subspace.
    ///
    /// `tag` must be unique across all insertions into this plan.
    pub fn insert(
        &mut self,
        tag: u64,
        point: &[Value],
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> SharedInsert {
        let n_subs = self.cuboid.len();
        let mut added_mask: u64 = 0;
        let mut query_evictions: Vec<(QueryId, Vec<u64>)> = Vec::new();

        // The scalar twin mutates skylines without maintaining signatures:
        // drop any interned state so the next batch rebuilds it. (This is
        // the cache's invalidation contract — any out-of-band entry
        // mutation must land here or keep signatures in lockstep.)
        for slot in &mut self.sig_cache {
            *slot = None;
        }

        // Learn the stride (and build the per-subspace kernels) on first use.
        if self.kernels.is_empty() {
            self.points = PointStore::new(point.len());
            self.kernels = self
                .cuboid
                .subspaces()
                .iter()
                .map(|&m| DomKernel::new(m, point.len()))
                .collect();
        }
        // The tuple's point is interned lazily, on its first admission.
        let mut interned: Option<PointId> = None;

        for i in 0..n_subs {
            let child_bits: u64 = self
                .cuboid
                .children(i)
                .iter()
                .fold(0u64, |acc, &c| acc | (1u64 << c));
            let known_survivor = self.assume_dva && (added_mask & child_bits) != 0;

            let kernel = &self.kernels[i];
            let score: Value = kernel.score(point);
            let sky = &mut self.skylines[i];
            let pos = sky.position(score);

            // Rejection scan over the prefix (scores ≤ ours): a dominator
            // cannot have a larger monotone score.
            let mut rejected = false;
            if !known_survivor {
                let boundary = sky.entries.partition_point(|e| e.score <= score);
                for e in &sky.entries[..boundary] {
                    clock.charge_dom_cmps(1);
                    stats.dom_comparisons += 1;
                    if kernel.relate(self.points.get(e.point), point) == DomRelation::Dominates {
                        rejected = true;
                        break;
                    }
                }
            }
            if rejected {
                continue;
            }

            // Eviction sweep over the suffix (scores ≥ ours): a victim
            // cannot have a smaller monotone score.
            let mut evicted: Vec<u64> = Vec::new();
            {
                let mut k = pos;
                while k < sky.entries.len() {
                    clock.charge_dom_cmps(1);
                    stats.dom_comparisons += 1;
                    if kernel.relate(point, self.points.get(sky.entries[k].point))
                        == DomRelation::Dominates
                    {
                        evicted.push(sky.entries.remove(k).tag);
                    } else {
                        k += 1;
                    }
                }
            }
            let pid = *interned.get_or_insert_with(|| {
                stats.plan_points_interned += 1;
                self.points.push(point)
            });
            self.skylines[i].entries.insert(
                pos,
                Entry {
                    score,
                    tag,
                    point: pid,
                },
            );
            added_mask |= 1u64 << i;

            if !evicted.is_empty() {
                for q in 0..self.cuboid.num_queries() {
                    let qid = QueryId(q as u16);
                    if self.cuboid.is_active(qid) && self.cuboid.query_subspace(qid) == i {
                        query_evictions.push((qid, evicted.clone()));
                    }
                }
            }
        }

        let in_query_sky = (0..self.cuboid.num_queries())
            .map(|q| {
                let qid = QueryId(q as u16);
                if !self.cuboid.is_active(qid) {
                    return false;
                }
                let i = self.cuboid.query_subspace(qid);
                added_mask & (1u64 << i) != 0
            })
            .collect();

        SharedInsert {
            added_mask,
            in_query_sky,
            query_evictions,
        }
    }

    /// Inserts a batch of tuples through the cuboid with the per-subspace
    /// work sharded across `threads`, bit-identically to calling
    /// [`SharedSkylinePlan::insert`] once per tuple in order.
    ///
    /// Tuple `c` of the batch lives at `vals[c * stride..][..stride]` and
    /// receives tag `first_tag + c`. The decomposition exploits two facts:
    ///
    /// * a subspace skyline's evolution depends only on *earlier candidates
    ///   in that same subspace* plus, through the Theorem 1 shortcut, the
    ///   admission bits of strictly *lower lattice levels* (every kept child
    ///   is a strict subset, hence on a lower level);
    /// * comparison charges are additive and nothing reads the clock during
    ///   an insert phase, so merging each shard's privately counted
    ///   comparisons in **fixed subspace order** reproduces the serial tick
    ///   stream exactly.
    ///
    /// So levels run sequentially (a barrier per level freezes the admission
    /// bits the next level's Theorem 1 test reads) and the subspaces *within*
    /// a level run as independent shards on the scoped pool, each replaying
    /// the full candidate sequence against its own skyline. New candidates
    /// are referenced via sentinel handles inside the shards and interned in
    /// candidate order afterwards — the same lazy-intern order the serial
    /// path produces — so arena ids also match byte-for-byte.
    pub fn insert_batch(
        &mut self,
        first_tag: u64,
        vals: &[Value],
        stride: usize,
        threads: Threads,
        clock: &mut SimClock,
        stats: &mut Stats,
    ) -> Vec<SharedInsert> {
        assert!(stride > 0, "insert_batch needs a positive stride");
        assert!(
            vals.len() % stride == 0,
            "vals length {} not a multiple of stride {stride}",
            vals.len()
        );
        let count = vals.len() / stride;
        if count == 0 {
            return Vec::new();
        }
        assert!(
            count <= BATCH_SENTINEL as usize,
            "batch too large for sentinel handles"
        );
        let n_subs = self.cuboid.len();
        if self.kernels.is_empty() {
            self.points = PointStore::new(stride);
            self.kernels = self
                .cuboid
                .subspaces()
                .iter()
                .map(|&m| DomKernel::new(m, stride))
                .collect();
        }
        debug_assert!(
            (self.points.len() as u32) < BATCH_SENTINEL,
            "arena too large for sentinel handles"
        );

        // Admission bitmask per candidate; a level only ever reads bits set
        // by strictly lower levels (frozen by the per-level barrier).
        let mut added_bits: Vec<u64> = vec![0; count];
        // Evictions per candidate, accumulated in ascending subspace order —
        // exactly the order serial `insert` encounters them.
        let mut evictions: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); count];

        let mut level_start = 0usize;
        while level_start < n_subs {
            let level = self.cuboid.subspaces()[level_start].len();
            let mut level_end = level_start + 1;
            while level_end < n_subs && self.cuboid.subspaces()[level_end].len() == level {
                level_end += 1;
            }
            debug_assert!(
                level_end == n_subs || self.cuboid.subspaces()[level_end].len() > level,
                "cuboid subspaces not level-sorted"
            );
            // Take each shard's skyline out of the plan so workers own them,
            // pairing each with its interned signature state. A cache hit
            // reuses the previous batch's signatures as-is; a miss (first
            // batch, post-invalidation, or fresh subspace) quantizes the
            // current members once, serially, so the hit/miss/build counters
            // are identical at every thread count.
            let shards: Vec<(usize, SubspaceSky, Option<SubspaceSigs>)> = (level_start..level_end)
                .map(|i| {
                    let sky = std::mem::take(&mut self.skylines[i]);
                    let sigs = match &self.sig_bounds {
                        None => None,
                        Some((lo, hi)) => match self.sig_cache[i].take() {
                            Some(s) => {
                                debug_assert_eq!(s.sigs.len(), sky.entries.len());
                                stats.presort_cache_hits += 1;
                                Some(s)
                            }
                            None => {
                                stats.presort_cache_misses += 1;
                                SigQuantizer::from_bounds(self.cuboid.subspaces()[i], lo, hi).map(
                                    |quant| {
                                        stats.sig_builds += sky.entries.len() as u64;
                                        let sigs = sky
                                            .entries
                                            .iter()
                                            .map(|e| quant.sig(self.points.get(e.point)))
                                            .collect();
                                        SubspaceSigs { quant, sigs }
                                    },
                                )
                            }
                        },
                    };
                    (i, sky, sigs)
                })
                .collect();
            let arena = &self.points;
            let kernels = &self.kernels;
            let cuboid = &self.cuboid;
            let assume_dva = self.assume_dva;
            let frozen_bits: &[u64] = &added_bits;
            let outs = map_ordered(threads, shards, |_, (i, mut sky, mut sigs)| {
                let kernel = &kernels[i];
                let child_bits: u64 = cuboid
                    .children(i)
                    .iter()
                    .fold(0u64, |acc, &c| acc | (1u64 << c));
                let mut admitted = vec![false; count];
                let mut evs: Vec<(usize, Vec<u64>)> = Vec::new();
                let mut comps: u64 = 0;
                let mut sig_builds: u64 = 0;
                for c in 0..count {
                    let point = &vals[c * stride..(c + 1) * stride];
                    let known_survivor = assume_dva && (frozen_bits[c] & child_bits) != 0;
                    let score: Value = kernel.score(point);
                    let pos = sky.position(score);
                    // `csig` is `Some` iff `sigs` is — the lockstep invariant
                    // the insert below relies on.
                    let csig = sigs.as_ref().map(|s| {
                        sig_builds += 1;
                        s.quant.sig(point)
                    });

                    let mut rejected = false;
                    if !known_survivor {
                        let boundary = sky.entries.partition_point(|e| e.score <= score);
                        for (k, e) in sky.entries[..boundary].iter().enumerate() {
                            // Charged exactly like the unscreened scan: the
                            // signature only decides *how* the verdict is
                            // reached, never how much it costs.
                            comps += 1;
                            let proven = match (&sigs, csig) {
                                (Some(s), Some(cs)) => {
                                    sig_relate(s.sigs[k], cs, s.quant.high_mask())
                                }
                                _ => None,
                            };
                            let dominates = match proven {
                                Some(v) => v == DomRelation::Dominates,
                                None => {
                                    let member = member_point(arena, vals, stride, e.point);
                                    kernel.relate(member, point) == DomRelation::Dominates
                                }
                            };
                            if dominates {
                                rejected = true;
                                break;
                            }
                        }
                    }
                    if rejected {
                        continue;
                    }

                    let mut evicted: Vec<u64> = Vec::new();
                    let mut k = pos;
                    while k < sky.entries.len() {
                        comps += 1;
                        let proven = match (&sigs, csig) {
                            (Some(s), Some(cs)) => sig_relate(cs, s.sigs[k], s.quant.high_mask()),
                            _ => None,
                        };
                        let dominates = match proven {
                            Some(v) => v == DomRelation::Dominates,
                            None => {
                                let member =
                                    member_point(arena, vals, stride, sky.entries[k].point);
                                kernel.relate(point, member) == DomRelation::Dominates
                            }
                        };
                        if dominates {
                            evicted.push(sky.entries.remove(k).tag);
                            if let Some(s) = &mut sigs {
                                s.sigs.remove(k);
                            }
                        } else {
                            k += 1;
                        }
                    }
                    sky.entries.insert(
                        pos,
                        Entry {
                            score,
                            tag: first_tag + c as u64,
                            point: PointId(BATCH_SENTINEL | c as u32),
                        },
                    );
                    if let (Some(s), Some(cs)) = (&mut sigs, csig) {
                        s.sigs.insert(pos, cs);
                    }
                    admitted[c] = true;
                    if !evicted.is_empty() {
                        evs.push((c, evicted));
                    }
                }
                ShardOut {
                    subspace: i,
                    sky,
                    sigs,
                    admitted,
                    evictions: evs,
                    comps,
                    sig_builds,
                }
            });
            // Fixed-order merge: ascending subspace index within the level.
            for out in outs {
                clock.charge_dom_cmps(out.comps);
                stats.dom_comparisons += out.comps;
                stats.sig_builds += out.sig_builds;
                self.skylines[out.subspace] = out.sky;
                self.sig_cache[out.subspace] = out.sigs;
                for (c, adm) in out.admitted.iter().enumerate() {
                    if *adm {
                        added_bits[c] |= 1u64 << out.subspace;
                    }
                }
                for (c, tags) in out.evictions {
                    evictions[c].push((out.subspace, tags));
                }
            }
            level_start = level_end;
        }

        // Intern admitted candidates in candidate order — the serial path's
        // lazy-intern order — then patch every sentinel handle.
        let mut interned: Vec<Option<PointId>> = vec![None; count];
        for (c, slot) in interned.iter_mut().enumerate() {
            if added_bits[c] != 0 {
                stats.plan_points_interned += 1;
                *slot = Some(self.points.push(&vals[c * stride..(c + 1) * stride]));
            }
        }
        for sky in &mut self.skylines {
            for e in &mut sky.entries {
                if e.point.0 & BATCH_SENTINEL != 0 {
                    let c = (e.point.0 & !BATCH_SENTINEL) as usize;
                    // Allowed survivor: a sentinel enters a skyline only on
                    // admission, so the candidate was interned just above.
                    #[allow(clippy::expect_used)]
                    let pid = interned[c].expect("admitted candidate was interned");
                    e.point = pid;
                }
            }
        }

        (0..count)
            .map(|c| {
                let added_mask = added_bits[c];
                let in_query_sky = (0..self.cuboid.num_queries())
                    .map(|q| {
                        let qid = QueryId(q as u16);
                        self.cuboid.is_active(qid)
                            && added_mask & (1u64 << self.cuboid.query_subspace(qid)) != 0
                    })
                    .collect();
                let mut query_evictions: Vec<(QueryId, Vec<u64>)> = Vec::new();
                for (i, tags) in &evictions[c] {
                    for q in 0..self.cuboid.num_queries() {
                        let qid = QueryId(q as u16);
                        if self.cuboid.is_active(qid) && self.cuboid.query_subspace(qid) == *i {
                            query_evictions.push((qid, tags.clone()));
                        }
                    }
                }
                SharedInsert {
                    added_mask,
                    in_query_sky,
                    query_evictions,
                }
            })
            .collect()
    }

    /// The subspace mask maintained at cuboid position `i` (diagnostics).
    pub fn subspace(&self, i: usize) -> DimMask {
        self.cuboid.subspaces()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqe_operators::skyline_reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn figure1_prefs() -> Vec<DimMask> {
        vec![
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ]
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<Value>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect()
    }

    fn insert_all(plan: &mut SharedSkylinePlan, points: &[Vec<Value>]) -> (SimClock, Stats) {
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in points.iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
        }
        (clock, stats)
    }

    #[test]
    fn shared_plan_matches_reference_for_every_query() {
        let prefs = figure1_prefs();
        let points = random_points(400, 4, 7);
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, true);
        insert_all(&mut plan, &points);
        for (q, &p) in prefs.iter().enumerate() {
            let mut got = plan.query_skyline_tags(QueryId(q as u16));
            got.sort_unstable();
            let mut expect: Vec<u64> = skyline_reference(&points, p)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "query Q{} skyline mismatch", q + 1);
        }
    }

    #[test]
    fn anticorrelated_heavy_load_stays_exact() {
        // The stress case: near-constant-sum points make huge skylines.
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<Vec<Value>> = (0..600)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..100.0);
                let b: f64 = rng.gen_range(0.0..100.0);
                let jitter: f64 = rng.gen_range(0.0..0.5);
                vec![a, 100.0 - a + jitter, b, 100.0 - b]
            })
            .collect();
        let prefs = figure1_prefs();
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, true);
        insert_all(&mut plan, &points);
        for (q, &p) in prefs.iter().enumerate() {
            let mut got = plan.query_skyline_tags(QueryId(q as u16));
            got.sort_unstable();
            let mut expect: Vec<u64> = skyline_reference(&points, p)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "query Q{} mismatch", q + 1);
        }
    }

    #[test]
    fn dva_shortcuts_do_not_change_results() {
        let prefs = figure1_prefs();
        let points = random_points(300, 4, 13);
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut fast = SharedSkylinePlan::new(cuboid.clone(), true);
        let mut slow = SharedSkylinePlan::new(cuboid, false);
        let (_, sf) = insert_all(&mut fast, &points);
        let (_, ss) = insert_all(&mut slow, &points);
        for q in 0..prefs.len() {
            let mut a = fast.query_skyline_tags(QueryId(q as u16));
            let mut b = slow.query_skyline_tags(QueryId(q as u16));
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // Theorem 1 sharing must save comparisons.
        assert!(
            sf.dom_comparisons < ss.dom_comparisons,
            "sharing saved nothing: {} vs {}",
            sf.dom_comparisons,
            ss.dom_comparisons
        );
    }

    #[test]
    fn evictions_reported_for_owning_query() {
        let prefs = vec![DimMask::singleton(0), DimMask::singleton(1)];
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let r1 = plan.insert(0, &[5.0, 1.0], &mut clock, &mut stats);
        assert!(r1.in_query_sky.iter().all(|&b| b));
        let r2 = plan.insert(1, &[2.0, 3.0], &mut clock, &mut stats);
        assert!(r2.in_query_sky[0]);
        assert!(!r2.in_query_sky[1]);
        assert_eq!(r2.query_evictions, vec![(QueryId(0), vec![0])]);
        assert_eq!(plan.query_skyline_tags(QueryId(0)), vec![1]);
        assert_eq!(plan.query_skyline_tags(QueryId(1)), vec![0]);
    }

    #[test]
    fn added_mask_is_monotone_up_the_lattice() {
        let prefs = figure1_prefs();
        let points = random_points(200, 4, 99);
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid.clone(), true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in points.iter().enumerate() {
            let r = plan.insert(i as u64, p, &mut clock, &mut stats);
            for s in 0..cuboid.len() {
                if cuboid
                    .children(s)
                    .iter()
                    .any(|&c| r.added_mask & (1 << c) != 0)
                {
                    assert!(
                        r.added_mask & (1 << s) != 0,
                        "Theorem 1 violated at subspace {}",
                        cuboid.subspaces()[s]
                    );
                }
            }
        }
    }

    #[test]
    fn skyline_entries_stay_score_sorted() {
        let prefs = vec![DimMask::from_dims([0, 1])];
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in random_points(200, 2, 3).iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
        }
        let entries = plan.query_skyline_entries(QueryId(0));
        let scores: Vec<f64> = entries.iter().map(|(_, p)| p[0] + p[1]).collect();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1], "entries out of score order");
        }
    }

    #[test]
    fn incremental_admit_matches_rebuild_and_replay() {
        // Insert a prefix under 3 queries, admit the 4th, then finish the
        // stream. Every query's final skyline — including the late
        // arrival's — must equal the reference skyline over ALL points, and
        // a from-scratch plan over the full query set replaying the whole
        // stream must agree.
        let prefs = figure1_prefs();
        let points = random_points(300, 4, 21);
        let split = 140;
        let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs[..3]), true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        // `history` mirrors the engine's tag-ordered complete join output.
        let mut history = PointStore::new(4);
        for (i, p) in points[..split].iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
            history.push(p);
        }
        plan.admit_query(prefs[3], &history, &mut clock, &mut stats);
        for (i, p) in points[split..].iter().enumerate() {
            plan.insert((split + i) as u64, p, &mut clock, &mut stats);
            history.push(p);
        }
        let mut rebuilt = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        for (i, p) in points.iter().enumerate() {
            rebuilt.insert(i as u64, p, &mut c2, &mut s2);
        }
        for (q, &p) in prefs.iter().enumerate() {
            let qid = QueryId(q as u16);
            let mut got = plan.query_skyline_tags(qid);
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_reference(&points, p)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query Q{} online skyline wrong", q + 1);
            let mut alt = rebuilt.query_skyline_tags(qid);
            alt.sort_unstable();
            assert_eq!(got, alt, "online vs rebuilt mismatch for Q{}", q + 1);
        }
        // The backfill paid for its comparisons.
        assert!(stats.dom_comparisons > 0);
    }

    #[test]
    fn admit_into_empty_plan_then_insert() {
        // Admission before any point has been seen: no kernels yet, nothing
        // to backfill; the lazy init on first insert must cover the grown
        // lattice.
        let prefs = figure1_prefs();
        let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs[..1]), true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        plan.admit_query(prefs[1], &PointStore::new(4), &mut clock, &mut stats);
        let points = random_points(100, 4, 5);
        for (i, p) in points.iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
        }
        for (q, &p) in prefs[..2].iter().enumerate() {
            let mut got = plan.query_skyline_tags(QueryId(q as u16));
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_reference(&points, p)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn depart_prunes_and_keeps_survivors_exact() {
        let prefs = figure1_prefs();
        let points = random_points(250, 4, 31);
        let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let split = 120;
        for (i, p) in points[..split].iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
        }
        plan.depart_query(QueryId(1));
        for (i, p) in points[split..].iter().enumerate() {
            plan.insert((split + i) as u64, p, &mut clock, &mut stats);
        }
        assert!(plan.query_skyline_tags(QueryId(1)).is_empty());
        assert_eq!(plan.query_skyline_len(QueryId(1)), 0);
        for q in [0usize, 2, 3] {
            let mut got = plan.query_skyline_tags(QueryId(q as u16));
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_reference(&points, prefs[q])
                .into_iter()
                .map(|i| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "survivor Q{} skyline wrong after depart", q + 1);
        }
    }

    #[test]
    fn insert_reports_nothing_for_departed_query() {
        let prefs = vec![DimMask::singleton(0), DimMask::singleton(1)];
        let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        plan.insert(0, &[5.0, 1.0], &mut clock, &mut stats);
        plan.depart_query(QueryId(0));
        let r = plan.insert(1, &[2.0, 3.0], &mut clock, &mut stats);
        assert!(!r.in_query_sky[0], "departed query flagged in-sky");
        assert!(r.query_evictions.iter().all(|(q, _)| *q != QueryId(0)));
    }

    /// Drives `plan` through the full stream in uneven batches via
    /// `insert_batch`, returning the per-tuple results plus final clock and
    /// stats. Batch boundaries are deliberately awkward (1, 7, 64, ...) to
    /// exercise single-candidate batches and cross-batch dominance.
    fn insert_batched(
        plan: &mut SharedSkylinePlan,
        points: &[Vec<Value>],
        threads: Threads,
    ) -> (Vec<SharedInsert>, SimClock, Stats) {
        let stride = points[0].len();
        let flat: Vec<Value> = points.iter().flatten().copied().collect();
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let mut results = Vec::new();
        let mut off = 0usize;
        let mut chunk = 1usize;
        while off < points.len() {
            let take = chunk.min(points.len() - off);
            let r = plan.insert_batch(
                off as u64,
                &flat[off * stride..(off + take) * stride],
                stride,
                threads,
                &mut clock,
                &mut stats,
            );
            results.extend(r);
            off += take;
            chunk = (chunk * 3 + 4).min(128);
        }
        (results, clock, stats)
    }

    #[test]
    fn insert_batch_is_bit_identical_to_serial_at_any_thread_count() {
        let prefs = figure1_prefs();
        let points = random_points(350, 4, 77);
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut sc = SimClock::default();
        let mut ss = Stats::new();
        let serial_results: Vec<SharedInsert> = points
            .iter()
            .enumerate()
            .map(|(i, p)| serial.insert(i as u64, p, &mut sc, &mut ss))
            .collect();
        for workers in [1usize, 2, 4, 8] {
            let threads = Threads::from_config(Some(workers));
            let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
            let (results, clock, stats) = insert_batched(&mut plan, &points, threads);
            assert_eq!(
                results, serial_results,
                "results diverge at {workers} threads"
            );
            assert_eq!(
                clock.ticks(),
                sc.ticks(),
                "ticks diverge at {workers} threads"
            );
            assert_eq!(
                stats.dom_comparisons, ss.dom_comparisons,
                "comparison counts diverge at {workers} threads"
            );
            for q in 0..prefs.len() {
                let qid = QueryId(q as u16);
                assert_eq!(
                    plan.query_skyline_entries(qid),
                    serial.query_skyline_entries(qid),
                    "query Q{} entries diverge at {workers} threads",
                    q + 1
                );
            }
        }
    }

    #[test]
    fn insert_batch_handles_tied_values_without_dva() {
        // Integer-grid points produce heavy score and value ties; the plan
        // must be run with assume_dva = false and stay identical to serial.
        let mut rng = StdRng::seed_from_u64(5150);
        let points: Vec<Vec<Value>> = (0..240)
            .map(|_| (0..4).map(|_| f64::from(rng.gen_range(0..6u8))).collect())
            .collect();
        let prefs = figure1_prefs();
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), false);
        let mut sc = SimClock::default();
        let mut ss = Stats::new();
        let serial_results: Vec<SharedInsert> = points
            .iter()
            .enumerate()
            .map(|(i, p)| serial.insert(i as u64, p, &mut sc, &mut ss))
            .collect();
        for workers in [1usize, 4] {
            let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), false);
            let (results, clock, stats) =
                insert_batched(&mut plan, &points, Threads::from_config(Some(workers)));
            assert_eq!(
                results, serial_results,
                "tied values diverge at {workers} threads"
            );
            assert_eq!(clock.ticks(), sc.ticks());
            assert_eq!(stats.dom_comparisons, ss.dom_comparisons);
        }
    }

    #[test]
    fn insert_batch_composes_with_admit_and_depart() {
        // Batched inserts interleaved with admissions and departures must
        // leave the plan in the same state as the serial path — including
        // the interned-arena ids the admission backfill reuses.
        let prefs = figure1_prefs();
        let points = random_points(300, 4, 4242);
        let (a, b) = (120usize, 210usize);
        let drive = |plan: &mut SharedSkylinePlan, batched: bool| -> (SimClock, Stats) {
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            let mut history = PointStore::new(4);
            let threads = Threads::from_config(Some(4));
            let stride = 4;
            let run = |plan: &mut SharedSkylinePlan,
                       clock: &mut SimClock,
                       stats: &mut Stats,
                       range: std::ops::Range<usize>| {
                if batched {
                    let flat: Vec<Value> =
                        points[range.clone()].iter().flatten().copied().collect();
                    plan.insert_batch(range.start as u64, &flat, stride, threads, clock, stats);
                } else {
                    for i in range {
                        plan.insert(i as u64, &points[i], clock, stats);
                    }
                }
            };
            run(plan, &mut clock, &mut stats, 0..a);
            for p in &points[..a] {
                history.push(p);
            }
            plan.admit_query(prefs[3], &history, &mut clock, &mut stats);
            run(plan, &mut clock, &mut stats, a..b);
            plan.depart_query(QueryId(1));
            run(plan, &mut clock, &mut stats, b..points.len());
            (clock, stats)
        };
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs[..3]), true);
        let (sc, ss) = drive(&mut serial, false);
        let mut sharded = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs[..3]), true);
        let (c, s) = drive(&mut sharded, true);
        assert_eq!(c.ticks(), sc.ticks());
        assert_eq!(s.dom_comparisons, ss.dom_comparisons);
        for q in 0..prefs.len() {
            let qid = QueryId(q as u16);
            assert_eq!(
                sharded.query_skyline_entries(qid),
                serial.query_skyline_entries(qid),
                "query Q{} diverges after admit/depart churn",
                q + 1
            );
        }
    }

    #[test]
    fn sig_screened_batches_are_bit_identical_and_reuse_the_cache() {
        // The signature cache must change nothing observable — results,
        // skyline entries, ticks, dom_comparisons — at any thread count,
        // while actually being exercised (hits after the first batch,
        // screening able to prove verdicts within the given bounds).
        let prefs = figure1_prefs();
        let points = random_points(350, 4, 77);
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut sc = SimClock::default();
        let mut ss = Stats::new();
        let serial_results: Vec<SharedInsert> = points
            .iter()
            .enumerate()
            .map(|(i, p)| serial.insert(i as u64, p, &mut sc, &mut ss))
            .collect();
        for workers in [1usize, 2, 4, 8] {
            let threads = Threads::from_config(Some(workers));
            let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
            plan.enable_sig_cache(&[0.0; 4], &[100.0; 4]);
            assert!(plan.sig_cache_enabled());
            let (results, clock, stats) = insert_batched(&mut plan, &points, threads);
            assert_eq!(
                results, serial_results,
                "sig screening changed results at {workers} threads"
            );
            assert_eq!(
                clock.ticks(),
                sc.ticks(),
                "ticks diverge at {workers} threads"
            );
            assert_eq!(stats.dom_comparisons, ss.dom_comparisons);
            assert_eq!(stats.observable(), ss.observable());
            for q in 0..prefs.len() {
                let qid = QueryId(q as u16);
                assert_eq!(
                    plan.query_skyline_entries(qid),
                    serial.query_skyline_entries(qid),
                    "query Q{} entries diverge at {workers} threads",
                    q + 1
                );
            }
            // The cache was genuinely used: first batch misses per subspace,
            // later batches hit; candidates and carried members were
            // quantized.
            assert!(stats.presort_cache_hits > 0, "no cache hits");
            assert!(stats.presort_cache_misses > 0, "no cache misses");
            assert!(stats.sig_builds > 0, "no signatures built");
        }
    }

    #[test]
    fn scalar_insert_invalidates_the_sig_cache() {
        // Interleaving the scalar twin between batches must not leave stale
        // signatures behind; the next batch rebuilds (a fresh miss) and the
        // final state still matches an all-serial run.
        let prefs = figure1_prefs();
        let points = random_points(200, 4, 31);
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        let mut sc = SimClock::default();
        let mut ss = Stats::new();
        for (i, p) in points.iter().enumerate() {
            serial.insert(i as u64, p, &mut sc, &mut ss);
        }
        let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), true);
        plan.enable_sig_cache(&[0.0; 4], &[100.0; 4]);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let threads = Threads::from_config(Some(4));
        let stride = 4;
        let flat: Vec<Value> = points.iter().flatten().copied().collect();
        let (a, b) = (80usize, 81usize);
        plan.insert_batch(
            0,
            &flat[..a * stride],
            stride,
            threads,
            &mut clock,
            &mut stats,
        );
        let hits_before = stats.presort_cache_hits;
        plan.insert(a as u64, &points[a], &mut clock, &mut stats);
        plan.insert_batch(
            b as u64,
            &flat[b * stride..],
            stride,
            threads,
            &mut clock,
            &mut stats,
        );
        assert_eq!(clock.ticks(), sc.ticks());
        assert_eq!(stats.observable(), ss.observable());
        for q in 0..prefs.len() {
            let qid = QueryId(q as u16);
            assert_eq!(
                plan.query_skyline_entries(qid),
                serial.query_skyline_entries(qid),
                "query Q{} diverges after scalar interleave",
                q + 1
            );
        }
        // The batch after the scalar insert could not have hit the cache:
        // everything was invalidated, so each subspace misses once per
        // batch and never hits.
        assert_eq!(stats.presort_cache_hits, hits_before);
        assert_eq!(hits_before, 0);
        assert_eq!(
            stats.presort_cache_misses,
            2 * plan.cuboid().len() as u64,
            "each subspace should miss exactly once per batch"
        );
    }

    #[test]
    fn skyline_len_tracks_entries() {
        let prefs = vec![DimMask::from_dims([0, 1])];
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, true);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        plan.insert(0, &[1.0, 9.0], &mut clock, &mut stats);
        plan.insert(1, &[9.0, 1.0], &mut clock, &mut stats);
        plan.insert(2, &[5.0, 5.0], &mut clock, &mut stats);
        assert_eq!(plan.query_skyline_len(QueryId(0)), 3);
        assert_eq!(plan.query_skyline_entries(QueryId(0)).len(), 3);
    }
}
