//! The min-max cuboid (Definition 7, Figure 6).

use crate::lattice::{q_serve, skycube_subspaces};
use caqe_types::ids::QuerySet;
use caqe_types::{DimMask, QueryId};

/// The pruned subspace lattice that the shared plan maintains skylines over.
///
/// A subspace `U` (with non-empty `QServe`) is kept iff at least one of
/// Definition 7's conditions holds:
///
/// 1. `|U| = 1` or `U` serves more than one query;
/// 2. no strict superset `V ⊃ U` has the same served-query set (i.e. `U` is
///    maximal for its lineage);
/// 3. `U` is the full preference subspace of some query.
///
/// ```
/// use caqe_cuboid::MinMaxCuboid;
/// use caqe_types::DimMask;
///
/// // The Figure 1 workload keeps 8 of the skycube's 15 subspaces.
/// let prefs = vec![
///     DimMask::from_dims([0, 1]),
///     DimMask::from_dims([0, 1, 2]),
///     DimMask::from_dims([1, 2]),
///     DimMask::from_dims([1, 2, 3]),
/// ];
/// let cuboid = MinMaxCuboid::build(&prefs);
/// assert_eq!(cuboid.len(), 8);
/// assert!(cuboid.contains(DimMask::from_dims([1, 2])));
/// assert!(!cuboid.contains(DimMask::from_dims([0, 3])));
/// ```
#[derive(Debug, Clone)]
pub struct MinMaxCuboid {
    /// Kept subspaces in ascending level order.
    subspaces: Vec<DimMask>,
    /// `serves[i]` = queries served by `subspaces[i]`.
    serves: Vec<QuerySet>,
    /// `children[i]` = indices of kept subspaces strictly contained in
    /// `subspaces[i]`.
    children: Vec<Vec<usize>>,
    /// `query_subspace[q]` = index of query `q`'s full preference subspace
    /// ([`INACTIVE_SUBSPACE`] for a departed slot).
    query_subspace: Vec<usize>,
    /// The queries' preference subspaces, as given. Departed queries keep
    /// their slot so global ids stay stable across churn.
    prefs: Vec<DimMask>,
    /// `active[q]` = whether slot `q` currently participates in Def. 7.
    active: Vec<bool>,
}

/// Sentinel `query_subspace` entry for an inactive (departed) query slot.
pub const INACTIVE_SUBSPACE: usize = usize::MAX;

impl MinMaxCuboid {
    /// Builds the min-max cuboid for a workload given each query's
    /// preference subspace `P_i`.
    ///
    /// # Panics
    /// Panics if `prefs` is empty, any preference is empty, or the union of
    /// dimensions exceeds 16.
    pub fn build(prefs: &[DimMask]) -> Self {
        Self::build_masked(prefs, &vec![true; prefs.len()])
    }

    /// [`MinMaxCuboid::build`] over the *active* subset of a query universe:
    /// inactive slots contribute nothing to Definition 7 but keep their
    /// global index (their `query_subspace` entry is [`INACTIVE_SUBSPACE`]).
    /// This is the from-scratch reference the incremental
    /// [`MinMaxCuboid::admit_query`] / [`MinMaxCuboid::depart_query`] paths
    /// are checked against.
    ///
    /// # Panics
    /// Panics if no slot is active, lengths differ, any active preference is
    /// empty, or the active dimension union exceeds 16.
    pub fn build_masked(prefs: &[DimMask], active: &[bool]) -> Self {
        assert_eq!(prefs.len(), active.len());
        assert!(
            active.iter().any(|&a| a),
            "workload must contain at least one active query"
        );
        assert!(
            prefs.iter().zip(active).all(|(p, &a)| !a || !p.is_empty()),
            "every active query needs at least one skyline dimension"
        );
        let (subspaces, serves, children, query_subspace) = Self::construct(prefs, active);
        MinMaxCuboid {
            subspaces,
            serves,
            children,
            query_subspace,
            prefs: prefs.to_vec(),
            active: active.to_vec(),
        }
    }

    /// Computes the Definition 7 keep-set over the active slots. Serve sets
    /// are indexed by *global* slot id so they stay meaningful across churn.
    fn construct(
        prefs: &[DimMask],
        active: &[bool],
    ) -> (Vec<DimMask>, Vec<QuerySet>, Vec<Vec<usize>>, Vec<usize>) {
        let active_prefs: Vec<DimMask> = prefs
            .iter()
            .zip(active)
            .filter(|(_, &a)| a)
            .map(|(&p, _)| p)
            .collect();
        let all = skycube_subspaces(&active_prefs);
        let serve_of = |u: DimMask| {
            let mut s = q_serve(u, prefs);
            for (i, &a) in active.iter().enumerate() {
                if !a {
                    s.remove(QueryId(i as u16));
                }
            }
            s
        };

        let mut kept: Vec<(DimMask, QuerySet)> = Vec::new();
        for &u in &all {
            let s = serve_of(u);
            if s.is_empty() {
                continue;
            }
            let cond1 = u.len() == 1 || s.len() > 1;
            // Condition 2: U is maximal for its lineage. Because any
            // superset's lineage is a subset of U's, "QServe(U) ⊆ QServe(V)"
            // for a strict superset V means equality.
            let cond2 = !all
                .iter()
                .any(|&v| u.is_strict_subset_of(v) && s.is_subset_of(serve_of(v)));
            let cond3 = active_prefs.contains(&u);
            if cond1 || cond2 || cond3 {
                kept.push((u, s));
            }
        }
        kept.sort_by_key(|(m, _)| (m.len(), m.0));

        let subspaces: Vec<DimMask> = kept.iter().map(|(m, _)| *m).collect();
        let serves: Vec<QuerySet> = kept.iter().map(|(_, s)| *s).collect();
        let children: Vec<Vec<usize>> = subspaces
            .iter()
            .map(|&u| {
                subspaces
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v.is_strict_subset_of(u))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        // Allowed survivor: construction condition 3 (every active query's
        // subspace is retained in `subspaces`) makes the lookup infallible.
        #[allow(clippy::expect_used)]
        let query_subspace: Vec<usize> = prefs
            .iter()
            .zip(active)
            .map(|(&p, &a)| {
                if !a {
                    return INACTIVE_SUBSPACE;
                }
                subspaces
                    .iter()
                    .position(|&u| u == p)
                    .expect("condition 3 guarantees each query's subspace is kept")
            })
            .collect();
        (subspaces, serves, children, query_subspace)
    }

    /// Admits a new query with preference subspace `pref` into the next free
    /// slot, extending the lattice per Definition 7. Admission is purely
    /// *additive*: every previously kept subspace stays kept (its serve set
    /// can only grow, and a strict superset introduced by new dimensions
    /// serves only the new query, so it cannot newly absorb an old node's
    /// lineage). Returns, for each subspace index of the *new* lattice, the
    /// index it had in the old lattice (`None` for freshly added nodes) so
    /// callers can splice per-subspace state instead of rebuilding it.
    ///
    /// # Panics
    /// Panics if `pref` is empty or the dimension union exceeds 16.
    pub fn admit_query(&mut self, pref: DimMask) -> Vec<Option<usize>> {
        assert!(!pref.is_empty(), "admitted query needs skyline dimensions");
        let old_subspaces = std::mem::take(&mut self.subspaces);
        self.prefs.push(pref);
        self.active.push(true);
        let (subspaces, serves, children, query_subspace) =
            Self::construct(&self.prefs, &self.active);
        let mapping: Vec<Option<usize>> = subspaces
            .iter()
            .map(|&u| {
                old_subspaces
                    .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
                    .ok()
            })
            .collect();
        debug_assert_eq!(
            mapping.iter().filter(|m| m.is_some()).count(),
            old_subspaces.len(),
            "admit must be additive: every old subspace stays kept"
        );
        self.subspaces = subspaces;
        self.serves = serves;
        self.children = children;
        self.query_subspace = query_subspace;
        mapping
    }

    /// Retires query `q` from the lattice, pruning subspaces that no longer
    /// satisfy Definition 7. Departure is purely *subtractive*: no new
    /// subspace can appear (subset relations between serve sets are
    /// preserved when a query bit is dropped from both sides). Returns the
    /// same new-index → old-index mapping as [`MinMaxCuboid::admit_query`];
    /// every entry is `Some`.
    ///
    /// If `q` is the last active query the lattice shape is left untouched
    /// (there is nothing to rank the keep-conditions against); only `q`'s
    /// serve bits are cleared.
    ///
    /// # Panics
    /// Panics if `q` is out of range or already inactive.
    pub fn depart_query(&mut self, q: QueryId) -> Vec<Option<usize>> {
        assert!(self.active[q.index()], "query departed twice");
        self.active[q.index()] = false;
        if !self.active.iter().any(|&a| a) {
            for s in &mut self.serves {
                s.remove(q);
            }
            self.query_subspace[q.index()] = INACTIVE_SUBSPACE;
            return (0..self.subspaces.len()).map(Some).collect();
        }
        let old_subspaces = std::mem::take(&mut self.subspaces);
        let (subspaces, serves, children, query_subspace) =
            Self::construct(&self.prefs, &self.active);
        let mapping: Vec<Option<usize>> = subspaces
            .iter()
            .map(|&u| {
                old_subspaces
                    .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
                    .ok()
            })
            .collect();
        debug_assert!(
            mapping.iter().all(|m| m.is_some()),
            "depart must be subtractive: no new subspace may appear"
        );
        self.subspaces = subspaces;
        self.serves = serves;
        self.children = children;
        self.query_subspace = query_subspace;
        mapping
    }

    /// Whether query slot `q` is currently active (admitted, not departed).
    /// Slots beyond the universe read as inactive.
    pub fn is_active(&self, q: QueryId) -> bool {
        self.active.get(q.index()).copied().unwrap_or(false)
    }

    /// The kept subspaces, ascending by level.
    pub fn subspaces(&self) -> &[DimMask] {
        &self.subspaces
    }

    /// Number of kept subspaces.
    pub fn len(&self) -> usize {
        self.subspaces.len()
    }

    /// Whether the cuboid is empty (never true for a valid workload).
    pub fn is_empty(&self) -> bool {
        self.subspaces.is_empty()
    }

    /// The queries served by kept subspace `i`.
    pub fn serves(&self, i: usize) -> QuerySet {
        self.serves[i]
    }

    /// Indices of kept subspaces strictly contained in kept subspace `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Index of the kept subspace equal to query `q`'s preference subspace.
    pub fn query_subspace(&self, q: QueryId) -> usize {
        self.query_subspace[q.index()]
    }

    /// The preference subspace of query `q`.
    pub fn pref(&self, q: QueryId) -> DimMask {
        self.prefs[q.index()]
    }

    /// Number of queries in the workload.
    pub fn num_queries(&self) -> usize {
        self.prefs.len()
    }

    /// Whether a subspace was kept.
    pub fn contains(&self, u: DimMask) -> bool {
        self.subspaces
            .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
            .is_ok()
    }

    /// Index of a kept subspace, if present.
    pub fn index_of(&self, u: DimMask) -> Option<usize> {
        self.subspaces
            .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
            .ok()
    }

    /// An FNV-1a digest over the cuboid's full structure — kept subspaces,
    /// serving sets, child lists, per-query subspace assignments, prefs and
    /// active flags. The plan snapshot (DESIGN.md §19) stores this per
    /// memoized group: the cuboid itself is a pure function of the prefs
    /// and is rebuilt on restore rather than persisted, and the digest
    /// cross-checks that the rebuild reproduced the memoized structure
    /// (a mismatch marks the snapshot stale, never a partial apply).
    pub fn structure_digest(&self) -> u64 {
        let mut h = caqe_types::Fnv1a::new();
        h.usize(self.subspaces.len());
        for m in &self.subspaces {
            h.u64(u64::from(m.0));
        }
        for s in &self.serves {
            h.u64(s.0);
        }
        for kids in &self.children {
            h.usize(kids.len());
            for &c in kids {
                h.usize(c);
            }
        }
        for &s in &self.query_subspace {
            h.usize(s);
        }
        for m in &self.prefs {
            h.u64(u64::from(m.0));
        }
        for &a in &self.active {
            h.u64(u64::from(a));
        }
        h.finish()
    }

    /// Kept subspaces grouped by level (cardinality), ascending — the rows
    /// of Figure 6.
    pub fn levels(&self) -> Vec<Vec<DimMask>> {
        let mut levels: Vec<Vec<DimMask>> = Vec::new();
        for &u in &self.subspaces {
            let l = u.len() - 1;
            while levels.len() <= l {
                levels.push(Vec::new());
            }
            levels[l].push(u);
        }
        levels.retain(|l| !l.is_empty());
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_prefs() -> Vec<DimMask> {
        vec![
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ]
    }

    #[test]
    fn structure_digest_tracks_rebuilds_and_churn() {
        let prefs = figure1_prefs();
        // A rebuild from the same prefs is digest-identical — the property
        // the plan-snapshot restore path relies on.
        let a = MinMaxCuboid::build(&prefs).structure_digest();
        let b = MinMaxCuboid::build(&prefs).structure_digest();
        assert_eq!(a, b);
        // Different prefs and post-churn states digest differently.
        let other = MinMaxCuboid::build(&prefs[..3]).structure_digest();
        assert_ne!(a, other);
        let mut churned = MinMaxCuboid::build(&prefs);
        churned.depart_query(QueryId(2));
        assert_ne!(a, churned.structure_digest());
    }

    #[test]
    fn figure6_exact_cuboid() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        let expect: Vec<DimMask> = vec![
            DimMask::singleton(0),
            DimMask::singleton(1),
            DimMask::singleton(2),
            DimMask::singleton(3),
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([1, 2]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ];
        assert_eq!(c.subspaces(), expect.as_slice());
    }

    #[test]
    fn figure6_levels() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        let levels = c.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 4); // all singletons
        assert_eq!(levels[1].len(), 2); // {d1,d2}, {d2,d3}
        assert_eq!(levels[2].len(), 2); // {d1,d2,d3}, {d2,d3,d4}
    }

    #[test]
    fn query_subspaces_are_kept() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        for (i, &p) in prefs.iter().enumerate() {
            let idx = c.query_subspace(QueryId(i as u16));
            assert_eq!(c.subspaces()[idx], p);
            assert!(c.serves(idx).contains(QueryId(i as u16)));
        }
    }

    #[test]
    fn children_are_strict_subsets() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        for i in 0..c.len() {
            for &ch in c.children(i) {
                assert!(c.subspaces()[ch].is_strict_subset_of(c.subspaces()[i]));
            }
        }
        // {d1,d2,d3} contains d1, d2, d3, {d1,d2}, {d2,d3}.
        let i = c.index_of(DimMask::from_dims([0, 1, 2])).unwrap();
        assert_eq!(c.children(i).len(), 5);
    }

    #[test]
    fn single_query_cuboid() {
        // One query over {d1, d2}: singletons + the query subspace.
        let c = MinMaxCuboid::build(&[DimMask::from_dims([0, 1])]);
        assert_eq!(
            c.subspaces(),
            &[
                DimMask::singleton(0),
                DimMask::singleton(1),
                DimMask::from_dims([0, 1])
            ]
        );
    }

    #[test]
    fn identical_queries_share_everything() {
        let p = DimMask::from_dims([0, 1, 2]);
        let c = MinMaxCuboid::build(&[p, p, p]);
        // Singletons + full subspace; intermediate 2-dim subspaces serve all
        // three queries (cond 1) so they are kept too.
        assert!(c.contains(p));
        for k in 0..3 {
            assert!(c.contains(DimMask::singleton(k)));
        }
        for i in 0..c.len() {
            assert!(!c.serves(i).is_empty());
        }
    }

    #[test]
    fn cuboid_is_subset_of_skycube() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        let sky = crate::lattice::skycube_subspaces(&prefs);
        assert!(c.len() <= sky.len());
        for &u in c.subspaces() {
            assert!(sky.contains(&u));
        }
    }

    #[test]
    fn definition7_holds_for_every_kept_subspace() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        let all = crate::lattice::skycube_subspaces(&prefs);
        for (i, &u) in c.subspaces().iter().enumerate() {
            let s = c.serves(i);
            assert!(!s.is_empty());
            let cond1 = u.len() == 1 || s.len() > 1;
            let cond2 = !all
                .iter()
                .any(|&v| u.is_strict_subset_of(v) && s.is_subset_of(q_serve(v, &prefs)));
            let cond3 = prefs.contains(&u);
            assert!(cond1 || cond2 || cond3, "kept subspace {u} violates Def. 7");
        }
    }

    #[test]
    #[should_panic]
    fn empty_pref_rejected() {
        let _ = MinMaxCuboid::build(&[DimMask::EMPTY]);
    }

    /// Structural equality modulo the serve/children/query_subspace views.
    fn assert_same_lattice(a: &MinMaxCuboid, b: &MinMaxCuboid) {
        assert_eq!(a.subspaces(), b.subspaces());
        for i in 0..a.len() {
            assert_eq!(a.serves(i), b.serves(i), "serve set differs at {i}");
            assert_eq!(a.children(i), b.children(i), "children differ at {i}");
        }
        assert_eq!(a.num_queries(), b.num_queries());
        for q in 0..a.num_queries() {
            let qid = QueryId(q as u16);
            assert_eq!(a.is_active(qid), b.is_active(qid));
            if a.is_active(qid) {
                assert_eq!(a.query_subspace(qid), b.query_subspace(qid));
            }
        }
    }

    #[test]
    fn admit_matches_masked_rebuild() {
        // Start from the first Figure 1 query and admit the rest one at a
        // time; after each admit the incremental lattice must be identical
        // to a from-scratch build over the grown workload.
        let prefs = figure1_prefs();
        let mut c = MinMaxCuboid::build(&prefs[..1]);
        for k in 1..prefs.len() {
            let mapping = c.admit_query(prefs[k]);
            let reference = MinMaxCuboid::build(&prefs[..=k]);
            assert_same_lattice(&c, &reference);
            // Mapping entries point at the right old subspaces.
            assert_eq!(mapping.len(), c.len());
        }
    }

    #[test]
    fn admit_is_additive() {
        let prefs = figure1_prefs();
        let mut c = MinMaxCuboid::build(&prefs[..2]);
        let before: Vec<DimMask> = c.subspaces().to_vec();
        let mapping = c.admit_query(prefs[3]);
        for (new_i, &u) in c.subspaces().iter().enumerate() {
            match mapping[new_i] {
                Some(old_i) => assert_eq!(before[old_i], u),
                None => assert!(!before.contains(&u), "node {u} wrongly marked new"),
            }
        }
        // Every old subspace survived.
        for &u in &before {
            assert!(c.contains(u), "admit dropped {u}");
        }
    }

    #[test]
    fn depart_matches_masked_rebuild() {
        let prefs = figure1_prefs();
        let mut c = MinMaxCuboid::build(&prefs);
        let mapping = c.depart_query(QueryId(3));
        assert!(mapping.iter().all(|m| m.is_some()));
        let reference = MinMaxCuboid::build_masked(&prefs, &[true, true, true, false]);
        assert_same_lattice(&c, &reference);
        // Q4's private subspace {d2,d3,d4} is gone, shared ones remain.
        assert!(!c.contains(DimMask::from_dims([1, 2, 3])));
        assert!(c.contains(DimMask::from_dims([1, 2])));
        assert!(!c.is_active(QueryId(3)));
    }

    #[test]
    fn depart_then_admit_round_trip() {
        // Departing a query and admitting an identical one restores the
        // lattice shape; the new query lives in a fresh slot.
        let prefs = figure1_prefs();
        let mut c = MinMaxCuboid::build(&prefs);
        let shape_before: Vec<DimMask> = c.subspaces().to_vec();
        c.depart_query(QueryId(1));
        c.admit_query(prefs[1]);
        assert_eq!(c.subspaces(), shape_before.as_slice());
        assert_eq!(c.num_queries(), 5);
        assert!(!c.is_active(QueryId(1)));
        assert!(c.is_active(QueryId(4)));
        assert_eq!(c.pref(QueryId(4)), prefs[1]);
        // The fresh slot's serve bits replace the departed one's.
        let i = c.query_subspace(QueryId(4));
        assert!(c.serves(i).contains(QueryId(4)));
        assert!(!c.serves(i).contains(QueryId(1)));
    }

    #[test]
    fn last_query_departing_keeps_lattice_shape() {
        let mut c = MinMaxCuboid::build(&[DimMask::from_dims([0, 1])]);
        let shape: Vec<DimMask> = c.subspaces().to_vec();
        let mapping = c.depart_query(QueryId(0));
        assert_eq!(mapping.len(), shape.len());
        assert_eq!(c.subspaces(), shape.as_slice());
        for i in 0..c.len() {
            assert!(c.serves(i).is_empty());
        }
        assert!(!c.is_active(QueryId(0)));
        // A later admit works from the empty active set.
        c.admit_query(DimMask::from_dims([0, 1]));
        assert!(c.is_active(QueryId(1)));
    }

    #[test]
    fn admit_with_new_dimensions_extends_lattice() {
        // Admitting a query over an entirely new dimension pair adds its
        // singletons and subspace without disturbing the old region of the
        // lattice.
        let mut c = MinMaxCuboid::build(&[DimMask::from_dims([0, 1])]);
        let mapping = c.admit_query(DimMask::from_dims([2, 3]));
        assert!(c.contains(DimMask::singleton(2)));
        assert!(c.contains(DimMask::from_dims([2, 3])));
        assert!(c.contains(DimMask::from_dims([0, 1])));
        // New nodes are flagged None in the mapping.
        let new_nodes = mapping.iter().filter(|m| m.is_none()).count();
        assert!(new_nodes >= 3, "expected ≥3 fresh nodes, got {new_nodes}");
    }

    #[test]
    #[should_panic]
    fn double_depart_rejected() {
        let mut c = MinMaxCuboid::build(&figure1_prefs());
        c.depart_query(QueryId(0));
        c.depart_query(QueryId(0));
    }
}
