//! The min-max cuboid (Definition 7, Figure 6).

use crate::lattice::{q_serve, skycube_subspaces};
use caqe_types::ids::QuerySet;
use caqe_types::{DimMask, QueryId};

/// The pruned subspace lattice that the shared plan maintains skylines over.
///
/// A subspace `U` (with non-empty `QServe`) is kept iff at least one of
/// Definition 7's conditions holds:
///
/// 1. `|U| = 1` or `U` serves more than one query;
/// 2. no strict superset `V ⊃ U` has the same served-query set (i.e. `U` is
///    maximal for its lineage);
/// 3. `U` is the full preference subspace of some query.
///
/// ```
/// use caqe_cuboid::MinMaxCuboid;
/// use caqe_types::DimMask;
///
/// // The Figure 1 workload keeps 8 of the skycube's 15 subspaces.
/// let prefs = vec![
///     DimMask::from_dims([0, 1]),
///     DimMask::from_dims([0, 1, 2]),
///     DimMask::from_dims([1, 2]),
///     DimMask::from_dims([1, 2, 3]),
/// ];
/// let cuboid = MinMaxCuboid::build(&prefs);
/// assert_eq!(cuboid.len(), 8);
/// assert!(cuboid.contains(DimMask::from_dims([1, 2])));
/// assert!(!cuboid.contains(DimMask::from_dims([0, 3])));
/// ```
#[derive(Debug, Clone)]
pub struct MinMaxCuboid {
    /// Kept subspaces in ascending level order.
    subspaces: Vec<DimMask>,
    /// `serves[i]` = queries served by `subspaces[i]`.
    serves: Vec<QuerySet>,
    /// `children[i]` = indices of kept subspaces strictly contained in
    /// `subspaces[i]`.
    children: Vec<Vec<usize>>,
    /// `query_subspace[q]` = index of query `q`'s full preference subspace.
    query_subspace: Vec<usize>,
    /// The queries' preference subspaces, as given.
    prefs: Vec<DimMask>,
}

impl MinMaxCuboid {
    /// Builds the min-max cuboid for a workload given each query's
    /// preference subspace `P_i`.
    ///
    /// # Panics
    /// Panics if `prefs` is empty, any preference is empty, or the union of
    /// dimensions exceeds 16.
    pub fn build(prefs: &[DimMask]) -> Self {
        assert!(
            !prefs.is_empty(),
            "workload must contain at least one query"
        );
        assert!(
            prefs.iter().all(|p| !p.is_empty()),
            "every query needs at least one skyline dimension"
        );
        let all = skycube_subspaces(prefs);
        let serve_of = |u: DimMask| q_serve(u, prefs);

        let mut kept: Vec<(DimMask, QuerySet)> = Vec::new();
        for &u in &all {
            let s = serve_of(u);
            if s.is_empty() {
                continue;
            }
            let cond1 = u.len() == 1 || s.len() > 1;
            // Condition 2: U is maximal for its lineage. Because any
            // superset's lineage is a subset of U's, "QServe(U) ⊆ QServe(V)"
            // for a strict superset V means equality.
            let cond2 = !all
                .iter()
                .any(|&v| u.is_strict_subset_of(v) && s.is_subset_of(serve_of(v)));
            let cond3 = prefs.contains(&u);
            if cond1 || cond2 || cond3 {
                kept.push((u, s));
            }
        }
        kept.sort_by_key(|(m, _)| (m.len(), m.0));

        let subspaces: Vec<DimMask> = kept.iter().map(|(m, _)| *m).collect();
        let serves: Vec<QuerySet> = kept.iter().map(|(_, s)| *s).collect();
        let children: Vec<Vec<usize>> = subspaces
            .iter()
            .map(|&u| {
                subspaces
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v.is_strict_subset_of(u))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        // Allowed survivor: construction condition 3 (every query subspace is
        // retained in `subspaces`) makes the position lookup infallible.
        #[allow(clippy::expect_used)]
        let query_subspace: Vec<usize> = prefs
            .iter()
            .map(|&p| {
                subspaces
                    .iter()
                    .position(|&u| u == p)
                    .expect("condition 3 guarantees each query's subspace is kept")
            })
            .collect();
        MinMaxCuboid {
            subspaces,
            serves,
            children,
            query_subspace,
            prefs: prefs.to_vec(),
        }
    }

    /// The kept subspaces, ascending by level.
    pub fn subspaces(&self) -> &[DimMask] {
        &self.subspaces
    }

    /// Number of kept subspaces.
    pub fn len(&self) -> usize {
        self.subspaces.len()
    }

    /// Whether the cuboid is empty (never true for a valid workload).
    pub fn is_empty(&self) -> bool {
        self.subspaces.is_empty()
    }

    /// The queries served by kept subspace `i`.
    pub fn serves(&self, i: usize) -> QuerySet {
        self.serves[i]
    }

    /// Indices of kept subspaces strictly contained in kept subspace `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Index of the kept subspace equal to query `q`'s preference subspace.
    pub fn query_subspace(&self, q: QueryId) -> usize {
        self.query_subspace[q.index()]
    }

    /// The preference subspace of query `q`.
    pub fn pref(&self, q: QueryId) -> DimMask {
        self.prefs[q.index()]
    }

    /// Number of queries in the workload.
    pub fn num_queries(&self) -> usize {
        self.prefs.len()
    }

    /// Whether a subspace was kept.
    pub fn contains(&self, u: DimMask) -> bool {
        self.subspaces
            .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
            .is_ok()
    }

    /// Index of a kept subspace, if present.
    pub fn index_of(&self, u: DimMask) -> Option<usize> {
        self.subspaces
            .binary_search_by_key(&(u.len(), u.0), |m| (m.len(), m.0))
            .ok()
    }

    /// Kept subspaces grouped by level (cardinality), ascending — the rows
    /// of Figure 6.
    pub fn levels(&self) -> Vec<Vec<DimMask>> {
        let mut levels: Vec<Vec<DimMask>> = Vec::new();
        for &u in &self.subspaces {
            let l = u.len() - 1;
            while levels.len() <= l {
                levels.push(Vec::new());
            }
            levels[l].push(u);
        }
        levels.retain(|l| !l.is_empty());
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_prefs() -> Vec<DimMask> {
        vec![
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ]
    }

    #[test]
    fn figure6_exact_cuboid() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        let expect: Vec<DimMask> = vec![
            DimMask::singleton(0),
            DimMask::singleton(1),
            DimMask::singleton(2),
            DimMask::singleton(3),
            DimMask::from_dims([0, 1]),
            DimMask::from_dims([1, 2]),
            DimMask::from_dims([0, 1, 2]),
            DimMask::from_dims([1, 2, 3]),
        ];
        assert_eq!(c.subspaces(), expect.as_slice());
    }

    #[test]
    fn figure6_levels() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        let levels = c.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 4); // all singletons
        assert_eq!(levels[1].len(), 2); // {d1,d2}, {d2,d3}
        assert_eq!(levels[2].len(), 2); // {d1,d2,d3}, {d2,d3,d4}
    }

    #[test]
    fn query_subspaces_are_kept() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        for (i, &p) in prefs.iter().enumerate() {
            let idx = c.query_subspace(QueryId(i as u16));
            assert_eq!(c.subspaces()[idx], p);
            assert!(c.serves(idx).contains(QueryId(i as u16)));
        }
    }

    #[test]
    fn children_are_strict_subsets() {
        let c = MinMaxCuboid::build(&figure1_prefs());
        for i in 0..c.len() {
            for &ch in c.children(i) {
                assert!(c.subspaces()[ch].is_strict_subset_of(c.subspaces()[i]));
            }
        }
        // {d1,d2,d3} contains d1, d2, d3, {d1,d2}, {d2,d3}.
        let i = c.index_of(DimMask::from_dims([0, 1, 2])).unwrap();
        assert_eq!(c.children(i).len(), 5);
    }

    #[test]
    fn single_query_cuboid() {
        // One query over {d1, d2}: singletons + the query subspace.
        let c = MinMaxCuboid::build(&[DimMask::from_dims([0, 1])]);
        assert_eq!(
            c.subspaces(),
            &[
                DimMask::singleton(0),
                DimMask::singleton(1),
                DimMask::from_dims([0, 1])
            ]
        );
    }

    #[test]
    fn identical_queries_share_everything() {
        let p = DimMask::from_dims([0, 1, 2]);
        let c = MinMaxCuboid::build(&[p, p, p]);
        // Singletons + full subspace; intermediate 2-dim subspaces serve all
        // three queries (cond 1) so they are kept too.
        assert!(c.contains(p));
        for k in 0..3 {
            assert!(c.contains(DimMask::singleton(k)));
        }
        for i in 0..c.len() {
            assert!(!c.serves(i).is_empty());
        }
    }

    #[test]
    fn cuboid_is_subset_of_skycube() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        let sky = crate::lattice::skycube_subspaces(&prefs);
        assert!(c.len() <= sky.len());
        for &u in c.subspaces() {
            assert!(sky.contains(&u));
        }
    }

    #[test]
    fn definition7_holds_for_every_kept_subspace() {
        let prefs = figure1_prefs();
        let c = MinMaxCuboid::build(&prefs);
        let all = crate::lattice::skycube_subspaces(&prefs);
        for (i, &u) in c.subspaces().iter().enumerate() {
            let s = c.serves(i);
            assert!(!s.is_empty());
            let cond1 = u.len() == 1 || s.len() > 1;
            let cond2 = !all
                .iter()
                .any(|&v| u.is_strict_subset_of(v) && s.is_subset_of(q_serve(v, &prefs)));
            let cond3 = prefs.contains(&u);
            assert!(cond1 || cond2 || cond3, "kept subspace {u} violates Def. 7");
        }
    }

    #[test]
    #[should_panic]
    fn empty_pref_rejected() {
        let _ = MinMaxCuboid::build(&[DimMask::EMPTY]);
    }
}
