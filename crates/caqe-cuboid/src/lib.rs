//! The shared min-max-cuboid plan (§4.1 of the paper).
//!
//! For a workload of skyline-over-join queries that differ in their skyline
//! dimensions, the *skycube* [36] would maintain all `2^d − 1` subspace
//! skylines (Figure 5). The **min-max cuboid** (Definition 7, Figure 6)
//! prunes this lattice to the minimal set of subspaces that still maximizes
//! sharing: all singletons, every subspace that serves more than one query,
//! every maximal subspace for its served-query set, and the full preference
//! subspace of each query.
//!
//! [`SharedSkylinePlan`] then maintains one incremental skyline per cuboid
//! subspace and inserts join results bottom-up, exploiting Theorem 1 (a
//! point non-dominated in a child subspace is non-dominated in any parent,
//! under the Distinct Value Attributes assumption) to skip comparisons.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod lattice;
pub mod minmax;
pub mod shared;

pub use lattice::{q_serve, skycube_subspaces};
pub use minmax::MinMaxCuboid;
pub use shared::{SharedInsert, SharedSkylinePlan};
