//! Cross-strategy integration tests: all five compared systems must agree
//! on the final result sets, and the qualitative relationships the paper
//! reports must hold (sharing produces fewer join results; blocking
//! execution emits late; CAQE's look-ahead saves comparisons).

use caqe_baselines::{all_strategies, JfslStrategy, SJfslStrategy, SsmjStrategy};
use caqe_contract::Contract;
use caqe_core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, Workload};
use caqe_data::{Distribution, TableGenerator};
use caqe_operators::MappingSet;
use caqe_types::DimMask;
use std::collections::BTreeSet;

fn tables(n: usize, dist: Distribution, seed: u64) -> (caqe_data::Table, caqe_data::Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[0.05])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn workload(contract: Contract) -> Workload {
    let mapping = MappingSet::mixed(2, 2, 4);
    let prefs = [
        (DimMask::from_dims([0, 1]), 0.9),
        (DimMask::from_dims([0, 1, 2]), 0.7),
        (DimMask::from_dims([1, 2]), 0.5),
        (DimMask::from_dims([1, 2, 3]), 0.3),
    ];
    Workload::new(
        prefs
            .iter()
            .map(|&(pref, priority)| QuerySpec {
                join_col: 0,
                mapping: mapping.clone(),
                pref,
                priority,
                contract: contract.clone(),
            })
            .collect(),
    )
}

fn result_sets(outcome: &caqe_core::RunOutcome) -> Vec<BTreeSet<(u64, u64)>> {
    outcome
        .per_query
        .iter()
        .map(|q| q.results.iter().copied().collect())
        .collect()
}

#[test]
fn all_strategies_agree_on_result_sets() {
    let (r, t) = tables(250, Distribution::Independent, 21);
    let w = workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(250, 6);
    let outcomes: Vec<_> = all_strategies()
        .iter()
        .map(|s| s.run(&r, &t, &w, &exec))
        .collect();
    let reference = result_sets(&outcomes[0]);
    for o in &outcomes[1..] {
        assert_eq!(
            result_sets(o),
            reference,
            "{} disagrees with {}",
            o.strategy,
            outcomes[0].strategy
        );
    }
}

#[test]
fn all_strategies_agree_on_anticorrelated_data() {
    let (r, t) = tables(200, Distribution::Anticorrelated, 22);
    let w = workload(Contract::Deadline { t_hard: 30.0 });
    let exec = ExecConfig::default().with_target_cells(200, 5);
    let outcomes: Vec<_> = all_strategies()
        .iter()
        .map(|s| s.run(&r, &t, &w, &exec))
        .collect();
    let reference = result_sets(&outcomes[0]);
    for o in &outcomes[1..] {
        assert_eq!(result_sets(o), reference, "{} disagrees", o.strategy);
    }
}

#[test]
fn shared_strategies_produce_fewer_join_results() {
    // Figure 10.a: the shared plan evaluates each join once; JFSL and SSMJ
    // re-join per query (4 queries here → ~4× the join results).
    let (r, t) = tables(300, Distribution::Independent, 23);
    let w = workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(300, 6);
    let caqe = CaqeStrategy.run(&r, &t, &w, &exec);
    let sjfsl = SJfslStrategy.run(&r, &t, &w, &exec);
    let jfsl = JfslStrategy.run(&r, &t, &w, &exec);
    let ssmj = SsmjStrategy.run(&r, &t, &w, &exec);
    assert!(
        caqe.stats.join_results < jfsl.stats.join_results,
        "CAQE {} vs JFSL {}",
        caqe.stats.join_results,
        jfsl.stats.join_results
    );
    assert!(caqe.stats.join_results < ssmj.stats.join_results);
    assert!(sjfsl.stats.join_results < jfsl.stats.join_results);
    // JFSL and SSMJ compute the identical joins.
    assert_eq!(jfsl.stats.join_results, ssmj.stats.join_results);
}

#[test]
fn caqe_discards_join_work_on_correlated_data() {
    // Correlated data: a handful of tuples dominates everything, so CAQE's
    // look-ahead should discard most regions before joining them.
    let (r, t) = tables(400, Distribution::Correlated, 24);
    let w = workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(400, 8);
    let caqe = CaqeStrategy.run(&r, &t, &w, &exec);
    let sjfsl = SJfslStrategy.run(&r, &t, &w, &exec);
    assert!(
        caqe.stats.join_results < sjfsl.stats.join_results,
        "look-ahead discarded nothing: CAQE {} vs S-JFSL {}",
        caqe.stats.join_results,
        sjfsl.stats.join_results
    );
    assert!(caqe.stats.regions_pruned > 0);
}

#[test]
fn jfsl_blocks_progressive_systems_do_not() {
    // JFSL's first emission per query coincides with its last join +
    // skyline work; CAQE emits much earlier for at least the high-priority
    // queries. This materializes once tuple-level work dominates the
    // look-ahead, i.e. at realistic input sizes.
    let (r, t) = tables(1500, Distribution::Independent, 25);
    let w = workload(Contract::LogDecay);
    let exec = ExecConfig::default().with_target_cells(1500, 10);
    let caqe = CaqeStrategy.run(&r, &t, &w, &exec);
    let jfsl = JfslStrategy.run(&r, &t, &w, &exec);
    let caqe_first = caqe
        .per_query
        .iter()
        .filter_map(|q| q.first_emission())
        .fold(f64::INFINITY, f64::min);
    let jfsl_first = jfsl
        .per_query
        .iter()
        .filter_map(|q| q.first_emission())
        .fold(f64::INFINITY, f64::min);
    assert!(
        caqe_first < jfsl_first,
        "CAQE first emission {caqe_first} not earlier than JFSL {jfsl_first}"
    );
}

#[test]
fn caqe_beats_blocking_baselines_on_deadline_contracts() {
    // The headline claim (Figure 9): under a tight deadline contract CAQE's
    // satisfaction exceeds the blocking baseline's.
    let (r, t) = tables(1500, Distribution::Independent, 26);
    let exec = ExecConfig::default().with_target_cells(1500, 10);
    // Calibrate the deadline to half of JFSL's total runtime: tight but
    // feasible for a progressive system.
    let probe = JfslStrategy.run(&r, &t, &workload(Contract::LogDecay), &exec);
    let deadline = probe.virtual_seconds * 0.5;
    let w = workload(Contract::Deadline { t_hard: deadline });
    let caqe = CaqeStrategy.run(&r, &t, &w, &exec);
    let jfsl = JfslStrategy.run(&r, &t, &w, &exec);
    assert!(
        caqe.avg_satisfaction() > jfsl.avg_satisfaction(),
        "CAQE {:.3} vs JFSL {:.3} under deadline {deadline:.2}s",
        caqe.avg_satisfaction(),
        jfsl.avg_satisfaction()
    );
}

#[test]
fn strategy_names_are_distinct() {
    let names: BTreeSet<&str> = all_strategies().iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 5);
    assert!(names.contains("CAQE"));
    assert!(names.contains("S-JFSL"));
    assert!(names.contains("JFSL"));
    assert!(names.contains("ProgXe+"));
    assert!(names.contains("SSMJ"));
}
