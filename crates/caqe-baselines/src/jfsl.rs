//! JFSL [17]: join-first, skyline-later — the blocking, non-shared baseline.

use caqe_contract::QueryScore;
use caqe_core::{
    prepare_inputs, ExecConfig, ExecutionStrategy, QueryOutcome, RunOutcome, Workload,
};
use caqe_data::Table;
use caqe_operators::{hash_join_project_store, skyline_bnl_store, JoinSpec};
use caqe_regions::buchta_estimate;
use caqe_trace::{NoopSink, RecordingSink, TraceEvent, TraceSink};
use caqe_types::{DomKernel, EngineError, SimClock, Stats};
use std::time::Instant;

/// Join-first-skyline-later: per query (priority order), materialize the
/// entire join, run a blocking BNL skyline, and only then report every
/// result. The worst progressiveness profile, and — with no sharing — the
/// most repeated work.
#[derive(Debug, Clone, Default)]
pub struct JfslStrategy;

impl JfslStrategy {
    fn run_impl<S: TraceSink>(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut S,
    ) -> Result<RunOutcome, EngineError> {
        let wall = Instant::now();
        let mut clock = SimClock::new(exec.cost_model);
        let mut stats = Stats::new();
        stats.ensure_queries(workload.len());
        let mut per_query: Vec<Option<QueryOutcome>> = vec![None; workload.len()];
        if S::ENABLED {
            sink.record(TraceEvent::Meta {
                strategy: self.name().to_string(),
                queries: workload.len(),
                ticks_per_second: exec.cost_model.ticks_per_second,
                start_tick: 0,
            });
        }

        let prep = prepare_inputs(r, t, exec, 0, sink)?;
        stats.ingest_quarantined += prep.quarantined();
        stats.ingest_clamped += prep.clamped();
        let r = prep.r_table(r);
        let t = prep.t_table(t);

        for qid in workload.by_priority() {
            let spec = workload.query(qid);
            // Full join, repeated per query: no shared sub-expressions. The
            // join output lands directly in a flat point store.
            let join = hash_join_project_store(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            // Blocking skyline: nothing is reported until it completes.
            let kernel = DomKernel::new(spec.pref, join.store.stride());
            let sky = skyline_bnl_store(&join.store, &kernel, &mut clock, &mut stats);

            let est = buchta_estimate(join.len().max(1) as f64, spec.pref.len());
            let mut score = QueryScore::new(spec.contract.clone(), est);
            let mut emissions = Vec::with_capacity(sky.len());
            let mut results = Vec::with_capacity(sky.len());
            for &i in &sky {
                clock.charge_emits(1);
                let ts = clock.now();
                let u = score.record(ts);
                stats.record_emission(qid.index(), u);
                emissions.push((ts, u));
                results.push(join.pairs[i]);
                if S::ENABLED {
                    sink.record(TraceEvent::Emission {
                        tick: clock.ticks(),
                        query: qid.0,
                        seq: results.len() as u64,
                        rid: u32::MAX,
                        tid: i as u64,
                        utility: u,
                        satisfaction: score.runtime_satisfaction(),
                    });
                }
            }
            per_query[qid.index()] = Some(QueryOutcome {
                query: qid,
                emissions,
                results,
                p_score: score.p_score(),
                satisfaction: score.final_satisfaction(),
            });
        }

        // Every priority slot was filled above; flatten preserves order.
        debug_assert!(per_query.iter().all(Option::is_some));
        Ok(RunOutcome {
            strategy: self.name().to_string(),
            per_query: per_query.into_iter().flatten().collect(),
            stats,
            virtual_seconds: clock.now(),
            wall_seconds: wall.elapsed().as_secs_f64(),
        })
    }
}

impl ExecutionStrategy for JfslStrategy {
    fn name(&self) -> &'static str {
        "JFSL"
    }

    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, &mut NoopSink)
    }

    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, sink)
    }
}
