//! SSMJ [14]: sort-based skyline-over-join — progressive but non-shared.

use caqe_contract::QueryScore;
use caqe_core::{
    prepare_inputs, ExecConfig, ExecutionStrategy, QueryOutcome, RunOutcome, Workload,
};
use caqe_data::Table;
use caqe_operators::{hash_join_project_store, JoinSpec};
use caqe_regions::buchta_estimate;
use caqe_trace::{NoopSink, RecordingSink, TraceEvent, TraceSink};
use caqe_types::{DomKernel, DomRelation, EngineError, SimClock, Stats};
use std::time::Instant;

/// Skyline-Sort-Merge-Join: per query (priority order), materialize the
/// join, sort it by the monotone sum over the preference dimensions, and
/// filter SFS-style. Once sorted, every admitted survivor is final and is
/// emitted immediately — progressive within a query, but with no sharing
/// across queries and the full sort paid upfront.
#[derive(Debug, Clone, Default)]
pub struct SsmjStrategy;

impl SsmjStrategy {
    fn run_impl<S: TraceSink>(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut S,
    ) -> Result<RunOutcome, EngineError> {
        let wall = Instant::now();
        let mut clock = SimClock::new(exec.cost_model);
        let mut stats = Stats::new();
        stats.ensure_queries(workload.len());
        let mut per_query: Vec<Option<QueryOutcome>> = vec![None; workload.len()];
        if S::ENABLED {
            sink.record(TraceEvent::Meta {
                strategy: self.name().to_string(),
                queries: workload.len(),
                ticks_per_second: exec.cost_model.ticks_per_second,
                start_tick: 0,
            });
        }

        let prep = prepare_inputs(r, t, exec, 0, sink)?;
        stats.ingest_quarantined += prep.quarantined();
        stats.ingest_clamped += prep.clamped();
        let r = prep.r_table(r);
        let t = prep.t_table(t);

        for qid in workload.by_priority() {
            let spec = workload.query(qid);
            let join = hash_join_project_store(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            // Sort by the monotone score: pay m·log m comparisons of clock
            // time upfront (these are sort comparisons, not dominance
            // comparisons, so they advance the clock but not the CPU
            // metric — matching what the paper measures in Fig. 10.b).
            // Scores are computed once per tuple, not inside the comparator;
            // the stable sort gives the identical order either way.
            let kernel = DomKernel::new(spec.pref, join.store.stride());
            let m = join.len();
            let scores_by_tuple: Vec<f64> =
                (0..m).map(|i| kernel.score(join.store.at(i))).collect();
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| scores_by_tuple[a].total_cmp(&scores_by_tuple[b]));
            if m > 1 {
                let sort_cost = (m as f64 * (m as f64).log2()).ceil() as u64;
                clock.charge_sort_cmps(sort_cost);
            }

            let est = buchta_estimate(m.max(1) as f64, spec.pref.len());
            let mut score = QueryScore::new(spec.contract.clone(), est);
            let mut emissions = Vec::new();
            let mut results = Vec::new();
            // SFS filter with immediate emission: after the monotone sort a
            // later tuple cannot dominate an admitted survivor.
            let mut sky: Vec<usize> = Vec::new();
            'next: for i in order {
                for &s in &sky {
                    clock.charge_dom_cmps(1);
                    stats.dom_comparisons += 1;
                    match kernel.relate(join.store.at(s), join.store.at(i)) {
                        DomRelation::Dominates => continue 'next,
                        DomRelation::DominatedBy => {
                            unreachable!("monotone sort violated")
                        }
                        DomRelation::Equal | DomRelation::Incomparable => {}
                    }
                }
                sky.push(i);
                clock.charge_emits(1);
                let ts = clock.now();
                let u = score.record(ts);
                stats.record_emission(qid.index(), u);
                emissions.push((ts, u));
                results.push(join.pairs[i]);
                if S::ENABLED {
                    sink.record(TraceEvent::Emission {
                        tick: clock.ticks(),
                        query: qid.0,
                        seq: results.len() as u64,
                        rid: u32::MAX,
                        tid: i as u64,
                        utility: u,
                        satisfaction: score.runtime_satisfaction(),
                    });
                }
            }
            per_query[qid.index()] = Some(QueryOutcome {
                query: qid,
                emissions,
                results,
                p_score: score.p_score(),
                satisfaction: score.final_satisfaction(),
            });
        }

        // Every priority slot was filled above; flatten preserves order.
        debug_assert!(per_query.iter().all(Option::is_some));
        Ok(RunOutcome {
            strategy: self.name().to_string(),
            per_query: per_query.into_iter().flatten().collect(),
            stats,
            virtual_seconds: clock.now(),
            wall_seconds: wall.elapsed().as_secs_f64(),
        })
    }
}

impl ExecutionStrategy for SsmjStrategy {
    fn name(&self) -> &'static str {
        "SSMJ"
    }

    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, &mut NoopSink)
    }

    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, sink)
    }
}
