//! The competitor techniques of the paper's evaluation (§7.1).
//!
//! "In all systems, while queries are processed in the order of the priority
//! `pr_i`, these existing techniques do not share work across skyline
//! queries":
//!
//! * [`jfsl::JfslStrategy`] — **JFSL** [17]: join-first-skyline-later. Each
//!   query computes its full join, then a blocking BNL skyline; all results
//!   arrive at the very end of the query's processing.
//! * [`ssmj::SsmjStrategy`] — **SSMJ** [14]: sort-based skyline join. The
//!   join output is sorted by a monotone score and filtered SFS-style, so
//!   survivors stream out progressively — but one query at a time and with
//!   no sharing.
//! * [`progxe::ProgXeStrategy`] — **ProgXe+** [27]: per-query progressive
//!   output-space-partitioned execution, count-driven rather than
//!   contract-driven. Realized as the shared engine in
//!   `EngineConfig::progxe_core()` run over single-query workloads in
//!   priority order on one continuous clock.
//! * [`sjfsl::SJfslStrategy`] — **S-JFSL**: the paper's sharing-based
//!   strawman — pipelines all join tuples over the min-max-cuboid plan in
//!   blind FIFO order, with no look-ahead pruning and no feedback.

// Library code must degrade, not abort (DESIGN.md §13).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod jfsl;
pub mod progxe;
pub mod sjfsl;
pub mod ssmj;

pub use jfsl::JfslStrategy;
pub use progxe::ProgXeStrategy;
pub use sjfsl::SJfslStrategy;
pub use ssmj::SsmjStrategy;

use caqe_core::ExecutionStrategy;

/// All five compared systems, in the paper's presentation order:
/// CAQE, S-JFSL, JFSL, ProgXe+, SSMJ.
pub fn all_strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(caqe_core::CaqeStrategy),
        Box::new(SJfslStrategy),
        Box::new(JfslStrategy),
        Box::new(ProgXeStrategy),
        Box::new(SsmjStrategy),
    ]
}
