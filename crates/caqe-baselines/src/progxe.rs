//! ProgXe+ [27]: per-query progressive result generation over a partitioned
//! output space, count-driven rather than contract-driven.

use caqe_core::{
    run_engine, EngineConfig, ExecConfig, ExecutionStrategy, QueryOutcome, RunOutcome, Workload,
};
use caqe_data::Table;
use caqe_types::Stats;
use std::time::Instant;

/// ProgXe+ processes one query at a time (priority order) with the
/// output-space region machinery — look-ahead pruning, dependency-driven
/// ordering and safe progressive emission — but picks regions by estimated
/// output count per unit cost and knows nothing about contracts or other
/// queries. Partitioning, regions and join work are all rebuilt per query:
/// no sharing.
#[derive(Debug, Clone, Default)]
pub struct ProgXeStrategy;

impl ExecutionStrategy for ProgXeStrategy {
    fn name(&self) -> &'static str {
        "ProgXe+"
    }

    fn run(&self, r: &Table, t: &Table, workload: &Workload, exec: &ExecConfig) -> RunOutcome {
        let wall = Instant::now();
        let engine = EngineConfig::progxe_core();
        let mut per_query: Vec<Option<QueryOutcome>> = vec![None; workload.len()];
        let mut stats = Stats::new();
        let mut ticks: u64 = 0;
        let mut virtual_seconds = 0.0;

        for qid in workload.by_priority() {
            let spec = workload.query(qid).clone();
            let single = Workload::new(vec![spec]);
            // Continue the shared timeline: query k starts when k−1 ends.
            let sub = run_engine(self.name(), r, t, &single, exec, &engine, ticks);
            ticks = (sub.virtual_seconds * exec.cost_model.ticks_per_second).round() as u64;
            virtual_seconds = sub.virtual_seconds;
            stats += sub.stats;
            let mut outcome = sub.per_query.into_iter().next().expect("one query");
            outcome.query = qid;
            per_query[qid.index()] = Some(outcome);
        }

        RunOutcome {
            strategy: self.name().to_string(),
            per_query: per_query.into_iter().map(Option::unwrap).collect(),
            stats,
            virtual_seconds,
            wall_seconds: wall.elapsed().as_secs_f64(),
        }
    }
}
