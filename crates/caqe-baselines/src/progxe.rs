//! ProgXe+ [27]: per-query progressive result generation over a partitioned
//! output space, count-driven rather than contract-driven.

use caqe_core::{
    try_run_engine, try_run_engine_traced, EngineConfig, ExecConfig, ExecutionStrategy,
    QueryOutcome, RunOutcome, Workload,
};
use caqe_data::Table;
use caqe_trace::{NoopSink, RecordingSink, TraceEvent, TraceSink};
use caqe_types::{EngineError, PerQueryStats, Stats};
use std::time::Instant;

/// ProgXe+ processes one query at a time (priority order) with the
/// output-space region machinery — look-ahead pruning, dependency-driven
/// ordering and safe progressive emission — but picks regions by estimated
/// output count per unit cost and knows nothing about contracts or other
/// queries. Partitioning, regions and join work are all rebuilt per query:
/// no sharing — including ingestion, which each sub-run validates afresh
/// (the fault plan is deterministic, so every sub-run sees the same input).
#[derive(Debug, Clone, Default)]
pub struct ProgXeStrategy;

impl ProgXeStrategy {
    fn run_impl<S: TraceSink>(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut S,
    ) -> Result<RunOutcome, EngineError> {
        let wall = Instant::now();
        let engine = EngineConfig::progxe_core();
        let mut per_query: Vec<Option<QueryOutcome>> = vec![None; workload.len()];
        let mut stats = Stats::new();
        stats.ensure_queries(workload.len());
        let mut ticks: u64 = 0;
        let mut virtual_seconds = 0.0;
        if S::ENABLED {
            sink.record(TraceEvent::Meta {
                strategy: self.name().to_string(),
                queries: workload.len(),
                ticks_per_second: exec.cost_model.ticks_per_second,
                start_tick: 0,
            });
        }

        for qid in workload.by_priority() {
            let spec = workload.query(qid).clone();
            let single = Workload::new(vec![spec]);
            // Continue the shared timeline: query k starts when k−1 ends.
            // The sub-run records into its own sink; its events are rebased
            // from the sub-workload's local query 0 to the real query id
            // before joining the outer stream.
            let mut sub = if S::ENABLED {
                let mut sub_sink = RecordingSink::new();
                let out = try_run_engine_traced(
                    self.name(),
                    r,
                    t,
                    &single,
                    exec,
                    &engine,
                    ticks,
                    &mut sub_sink,
                )?;
                for mut ev in sub_sink.into_events() {
                    match &mut ev {
                        // The outer Meta already describes the whole run.
                        TraceEvent::Meta { .. } => continue,
                        TraceEvent::Emission { query, .. } => *query = qid.0,
                        _ => {}
                    }
                    sink.record(ev);
                }
                out
            } else {
                try_run_engine(self.name(), r, t, &single, exec, &engine, ticks)?
            };
            ticks = (sub.virtual_seconds * exec.cost_model.ticks_per_second).round() as u64;
            virtual_seconds = sub.virtual_seconds;
            // The sub-run credits its emissions to local query 0; move them
            // to the real slot before the flat counters merge.
            let mut sub_pq = PerQueryStats::default();
            for pq in sub.stats.per_query.drain(..) {
                sub_pq += pq;
            }
            stats += sub.stats;
            stats.per_query[qid.index()] += sub_pq;
            let Some(mut outcome) = sub.per_query.into_iter().next() else {
                return Err(EngineError::InvalidWorkload {
                    reason: "single-query sub-run returned no outcome".to_string(),
                });
            };
            outcome.query = qid;
            per_query[qid.index()] = Some(outcome);
        }

        // Every priority slot was filled above; flatten preserves order.
        debug_assert!(per_query.iter().all(Option::is_some));
        Ok(RunOutcome {
            strategy: self.name().to_string(),
            per_query: per_query.into_iter().flatten().collect(),
            stats,
            virtual_seconds,
            wall_seconds: wall.elapsed().as_secs_f64(),
        })
    }
}

impl ExecutionStrategy for ProgXeStrategy {
    fn name(&self) -> &'static str {
        "ProgXe+"
    }

    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, &mut NoopSink)
    }

    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        self.run_impl(r, t, workload, exec, sink)
    }
}
