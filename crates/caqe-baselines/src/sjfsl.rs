//! S-JFSL: the sharing-based strawman the paper introduces for comparison —
//! the min-max-cuboid shared plan with blind pipelining (§7.1).

use caqe_core::{
    try_run_engine, try_run_engine_traced, EngineConfig, ExecConfig, ExecutionStrategy, RunOutcome,
    Workload,
};
use caqe_data::Table;
use caqe_trace::RecordingSink;
use caqe_types::EngineError;

/// S-JFSL pipelines every join tuple through the shared min-max-cuboid plan
/// in FIFO cell-pair order. It enjoys the shared plan's reduction in join
/// and skyline work, but with no output look-ahead, no contract-driven
/// ordering, no dominance-based discarding and no feedback — isolating the
/// value of CAQE's optimizer from the value of plan sharing.
#[derive(Debug, Clone, Default)]
pub struct SJfslStrategy;

impl ExecutionStrategy for SJfslStrategy {
    fn name(&self) -> &'static str {
        "S-JFSL"
    }

    fn try_run(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
    ) -> Result<RunOutcome, EngineError> {
        try_run_engine(
            self.name(),
            r,
            t,
            workload,
            exec,
            &EngineConfig::s_jfsl(),
            0,
        )
    }

    fn try_run_traced(
        &self,
        r: &Table,
        t: &Table,
        workload: &Workload,
        exec: &ExecConfig,
        sink: &mut RecordingSink,
    ) -> Result<RunOutcome, EngineError> {
        try_run_engine_traced(
            self.name(),
            r,
            t,
            workload,
            exec,
            &EngineConfig::s_jfsl(),
            0,
            sink,
        )
    }
}
