//! The [`Strategy`] trait and the combinators the test suite uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returning a fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (output of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union; panics on an empty branch list.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi {
                    lo
                } else if hi < <$t>::MAX {
                    rng.inner().gen_range(lo..hi + 1)
                } else {
                    // Inclusive range reaching MAX: widen through u64.
                    lo + (rng.inner().gen::<u64>() % ((hi - lo) as u64 + 1)) as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
