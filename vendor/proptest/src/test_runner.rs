//! Test execution support: configuration, RNG, and case-level errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (the `cases` subset of upstream's config).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed; the case is discarded.
    Reject,
    /// A `prop_assert*!` failed; the test fails with this message.
    Fail(String),
}

/// The RNG driving generation — deterministic per test function so CI
/// failures reproduce locally.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test function's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name; any stable spread works.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.0
    }
}
