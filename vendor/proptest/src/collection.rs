//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.inner().gen_range(self.size.min..self.size.max + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
