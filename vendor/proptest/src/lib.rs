//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of proptest's API that the CAQE test suite uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, [`collection::vec`], [`strategy::Just`], [`arbitrary::any`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: generation is driven by a fixed deterministic
//! seed derived from the test function's name (upstream randomizes and
//! persists failing seeds), and failing cases are reported without
//! shrinking. Case counts default to 256, matching upstream.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(args in strategies) { body }` item
/// becomes a `#[test]` that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]; the config is captured outside
/// the per-function repetition so it can be repeated per test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match result {
                        Ok(()) => case += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest: too many prop_assume rejections ({rejected})"
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}");
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    a,
                    b,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies (all producing the same value type)
/// uniformly at random per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
