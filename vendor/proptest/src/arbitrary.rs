//! `any::<T>()` for the primitive types the test suite samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner().gen::<bool>()
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Output of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
