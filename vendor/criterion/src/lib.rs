//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` and `black_box` — backed by a
//! simple median-of-samples timer instead of criterion's full statistical
//! machinery. Output is one line per benchmark: `name/param  time/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Benchmarks a standalone closure (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 20, |b| f(b));
        self
    }
}

/// Identifier `function/parameter` for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labeled `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary statistics here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: one untimed warm-up call to size iteration batches.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warmup);
    let per_iter = warmup
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_micros(1));
    // Aim for ~10ms per sample, capped to keep total time bounded.
    let iters =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1000) as u64;

    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!("bench {label:<50} {median:>12.2?}/iter ({sample_size} samples x {iters} iters)");
}

/// Declares a benchmark entry function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
