//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::gen`] / [`Rng::gen_range`] for `f64`, `u32`, `u64` and `usize`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! fast, and statistically strong enough for synthetic benchmark data. The
//! streams differ from upstream `rand`'s `StdRng` (ChaCha12); nothing in
//! this workspace depends on the exact stream, only on determinism per seed.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution of `Rng::gen`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style unbiased bounded sampling via rejection.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0..10u32);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit");
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = rng.gen_range(5..6usize);
            assert_eq!(u, 5);
        }
    }
}
