//! # CAQE — Contract-Aware Query Execution
//!
//! A from-scratch Rust reproduction of *"CAQE: A Contract Driven Approach to
//! Processing Concurrent Decision Support Queries"* (EDBT 2014).
//!
//! This facade crate re-exports the public API of every subsystem so that
//! downstream users (and the examples in `examples/`) can depend on a single
//! crate:
//!
//! ```
//! use caqe::types::DimMask;
//! let subspace = DimMask::from_dims([0, 2]);
//! assert_eq!(subspace.len(), 2);
//! ```

/// Foundational types: subspaces, dominance, boxes, virtual clock, stats.
pub use caqe_types as types;

/// Tables, schemas and the synthetic benchmark data generators.
pub use caqe_data as data;

/// Single-query relational + skyline operators (joins, project, BNL, SFS).
pub use caqe_operators as operators;

/// Subspace lattice, skycube and the shared min-max-cuboid plan.
pub use caqe_cuboid as cuboid;

/// Quad-tree input partitioning with join-predicate signatures.
pub use caqe_partition as partition;

/// Progressiveness contracts, utility functions and satisfaction scoring.
pub use caqe_contract as contract;

/// Output regions, dependency graph and the contract-driven benefit model.
pub use caqe_regions as regions;

/// Deterministic event tracing: scheduler decisions, satisfaction
/// timelines, estimator audits and phase spans over virtual time.
pub use caqe_trace as trace;

/// Deterministic fault injection: seeded chaos plans for cost spikes,
/// estimator noise, worker panics and input corruption.
pub use caqe_faults as faults;

/// The CAQE framework: workload model, optimizer and contract-aware executor.
pub use caqe_core as core;

/// Competitor techniques from the paper's evaluation: JFSL, SSMJ, ProgXe+,
/// S-JFSL.
pub use caqe_baselines as baselines;

/// Deterministic parallel execution: pinned worker pools and
/// order-preserving fan-out.
pub use caqe_parallel as parallel;

/// Live observability: deterministic metrics registry, contract-SLO
/// monitor, phase profiler and exporters.
pub use caqe_obs as obs;

/// Wall-clock serving layer: session front door, admission control,
/// deadline watchdogs and crash-safe snapshot/restore.
pub use caqe_serve as serve;
