//! Property-based tests of the core skyline machinery: every algorithm and
//! shared structure must agree with the definitional oracle on arbitrary
//! inputs.

use caqe::cuboid::{MinMaxCuboid, SharedSkylinePlan};
use caqe::operators::{
    skyline_bnl, skyline_reference, skyline_sfs, IncrementalSkyline, InsertOutcome,
};
use caqe::types::{dominates_in, DimMask, QueryId, SimClock, Stats};
use proptest::prelude::*;

/// Up to 60 points in up to 4 dimensions, values on a small lattice so that
/// ties and duplicates are exercised.
fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=4).prop_flat_map(|d| {
        proptest::collection::vec(
            proptest::collection::vec((0u8..12).prop_map(|v| v as f64), d..=d),
            0..60,
        )
    })
}

/// A random non-empty subspace of `d` dimensions.
fn mask_for(d: usize, bits: u32) -> DimMask {
    let m = bits % ((1 << d) as u32);
    if m == 0 {
        DimMask::full(d)
    } else {
        DimMask(m)
    }
}

proptest! {
    #[test]
    fn bnl_and_sfs_match_reference(points in points_strategy(), bits in 0u32..16) {
        let d = points.first().map_or(1, |p| p.len());
        let mask = mask_for(d, bits);
        let reference = skyline_reference(&points, mask);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        let bnl = skyline_bnl(&points, mask, &mut clock, &mut stats);
        let sfs = skyline_sfs(&points, mask, &mut clock, &mut stats);
        prop_assert_eq!(&bnl, &reference);
        prop_assert_eq!(&sfs, &reference);
    }

    #[test]
    fn skyline_is_minimal_and_complete(points in points_strategy(), bits in 0u32..16) {
        let d = points.first().map_or(1, |p| p.len());
        let mask = mask_for(d, bits);
        let sky = skyline_reference(&points, mask);
        // No member is dominated by any point.
        for &i in &sky {
            for q in &points {
                prop_assert!(!dominates_in(q, &points[i], mask));
            }
        }
        // Every non-member is dominated by some member.
        let member: std::collections::BTreeSet<usize> = sky.iter().copied().collect();
        for (i, p) in points.iter().enumerate() {
            if !member.contains(&i) {
                prop_assert!(
                    sky.iter().any(|&s| dominates_in(&points[s], p, mask)),
                    "non-member {i} not dominated"
                );
            }
        }
    }

    #[test]
    fn incremental_skyline_matches_reference(points in points_strategy(), bits in 0u32..16) {
        let d = points.first().map_or(1, |p| p.len());
        let mask = mask_for(d, bits);
        let mut sky = IncrementalSkyline::new(mask);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in points.iter().enumerate() {
            let _ = sky.insert(i as u64, p, &mut clock, &mut stats);
        }
        let mut got: Vec<u64> = sky.tags().collect();
        got.sort_unstable();
        // The incremental structure keeps one representative per duplicate
        // *value*; the reference keeps all. Compare value sets instead.
        let reference = skyline_reference(&points, mask);
        let mut want: Vec<u64> = reference.iter().map(|&i| i as u64).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn incremental_evictions_are_sound(points in points_strategy()) {
        // Whatever got evicted must be dominated by the point that evicted
        // it; whatever is Dominated on insert must have a dominator inside.
        let d = points.first().map_or(1, |p| p.len());
        let mask = DimMask::full(d);
        let mut sky = IncrementalSkyline::new(mask);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in points.iter().enumerate() {
            match sky.insert(i as u64, p, &mut clock, &mut stats) {
                InsertOutcome::Added { removed } => {
                    for tag in removed {
                        prop_assert!(dominates_in(p, &points[tag as usize], mask));
                    }
                }
                InsertOutcome::Dominated => {
                    prop_assert!(sky
                        .entries()
                        .any(|(_, q)| dominates_in(q, p, mask)));
                }
            }
        }
    }

    #[test]
    fn shared_plan_matches_reference_per_query(
        points in points_strategy(),
        pref_bits in proptest::collection::vec(1u32..16, 1..5),
    ) {
        let d = points.first().map_or(2, |p| p.len()).max(2);
        // Regenerate points at fixed arity d for the workload.
        let points: Vec<Vec<f64>> = points
            .into_iter()
            .map(|mut p| {
                p.resize(d, 1.0);
                p
            })
            .collect();
        let prefs: Vec<DimMask> = pref_bits
            .iter()
            .map(|&b| mask_for(d, b))
            .collect();
        // Ties are possible on the lattice: DVA shortcuts must stay off.
        let cuboid = MinMaxCuboid::build(&prefs);
        let mut plan = SharedSkylinePlan::new(cuboid, false);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (i, p) in points.iter().enumerate() {
            plan.insert(i as u64, p, &mut clock, &mut stats);
        }
        for (qi, &pref) in prefs.iter().enumerate() {
            let mut got = plan.query_skyline_tags(QueryId(qi as u16));
            got.sort_unstable();
            let mut want: Vec<u64> = skyline_reference(&points, pref)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "query {} over {}", qi, pref);
        }
    }

    #[test]
    fn theorem1_subspace_monotonicity(points in points_strategy(), bits in 1u32..15) {
        // Under distinct values, SKY_U ⊆ SKY_V for U ⊂ V. Our lattice
        // points have ties, so restrict to deduplicated dimension values.
        let d = points.first().map_or(2, |p| p.len()).max(2);
        // Perturb to break ties deterministically.
        let points: Vec<Vec<f64>> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (0..d)
                    .map(|k| p.get(k).copied().unwrap_or(0.0) + (i as f64) * 1e-7)
                    .collect()
            })
            .collect();
        let v = DimMask::full(d);
        let u = mask_for(d, bits);
        prop_assume!(u.is_strict_subset_of(v));
        let sky_u: std::collections::BTreeSet<usize> =
            skyline_reference(&points, u).into_iter().collect();
        let sky_v: std::collections::BTreeSet<usize> =
            skyline_reference(&points, v).into_iter().collect();
        prop_assert!(sky_u.is_subset(&sky_v), "Theorem 1 violated");
    }
}
