//! Robustness contract of the wall-clock serving layer (DESIGN.md §18):
//! (a) kill-and-restore is digest-equivalent to an uninterrupted run;
//! (b) a crash at any point of the snapshot write protocol never leaves a
//! loadable-but-corrupt snapshot; (c) a chaos soak stays live with the
//! queue bounded and contract SLOs retained; (d) every admission path —
//! accept, queue-full reject, invalid reject, cancel, deadline expiry,
//! negotiation downgrade — answers with typed state, never a panic.

use caqe::contract::Contract;
use caqe::core::{EngineConfig, ExecConfig, QuerySpec};
use caqe::data::{Distribution, TableGenerator, ValidationPolicy};
use caqe::faults::FaultPlan;
use caqe::operators::MappingSet;
use caqe::serve::{
    load_snapshot, mix_request, run_soak, write_snapshot, write_snapshot_with_crash, CaqeServer,
    CrashPoint, RejectReason, ServeConfig, SessionState, Snapshot, SnapshotError, SoakConfig,
    SubmitRequest, SubmitResponse, SNAPSHOT_VERSION,
};
use caqe::types::DimMask;
use std::path::PathBuf;
use std::time::Duration;

fn tables(n: usize, seed: u64) -> (caqe::data::Table, caqe::data::Table) {
    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn spec(col: usize, pref: DimMask, priority: f64, contract: Contract) -> QuerySpec {
    QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    }
}

fn catalog() -> Vec<QuerySpec> {
    vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ]
}

fn server(cfg: ServeConfig) -> CaqeServer {
    CaqeServer::new(
        tables(400, 7),
        catalog(),
        ExecConfig::default().with_target_cells(400, 8),
        EngineConfig::caqe(),
        cfg,
    )
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("caqe_serve_test_{}_{name}", std::process::id()))
}

/// The tentpole equivalence claim: snapshotting mid-workload and restoring
/// into a fresh server yields exactly the per-session digests of a run
/// that was never interrupted. Epochs are deterministic and the queue is
/// FIFO-quantized, so the kill point must not be observable.
#[test]
fn kill_and_restore_matches_uninterrupted_run() {
    let sessions = 10usize;
    let cfg = ServeConfig {
        queue_bound: sessions,
        epoch_batch: 4,
        ..ServeConfig::default()
    };
    let submit_all = |s: &CaqeServer| {
        for i in 0..sessions {
            match s.submit(mix_request(catalog().len(), 0, i)) {
                SubmitResponse::Accepted { .. } => {}
                SubmitResponse::Rejected { reason, .. } => panic!("unexpected reject: {reason}"),
            }
        }
    };

    let uninterrupted = server(cfg);
    submit_all(&uninterrupted);
    let reports = uninterrupted.drain();
    assert!(reports.iter().all(|r| r.succeeded), "clean epoch failed");
    let baseline = uninterrupted.session_digests();
    assert_eq!(baseline.len(), sessions);

    // Same submissions, killed after one epoch (4 of 10 sessions done).
    let killed = server(cfg);
    submit_all(&killed);
    assert!(killed.run_epoch().is_some());
    let path = tmp("restore_equivalence");
    let snap = killed.shutdown_to_snapshot(&path).expect("snapshot");
    assert_eq!(snap.completed.len(), 4, "one epoch of four sessions");
    assert_eq!(snap.queued.len(), 6, "remainder captured in FIFO order");

    let (restored, loaded) = CaqeServer::restore(
        tables(400, 7),
        catalog(),
        ExecConfig::default().with_target_cells(400, 8),
        EngineConfig::caqe(),
        cfg,
        &path,
    )
    .expect("restore");
    assert_eq!(loaded.version, SNAPSHOT_VERSION);
    restored.drain();
    assert_eq!(
        restored.session_digests(),
        baseline,
        "restored run diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

/// Crash-safety of the write protocol: a crash before the atomic rename —
/// mid-temp-write or just before the rename — must leave the *previous*
/// snapshot fully loadable, and a torn/garbled file must never parse.
#[test]
fn crash_during_snapshot_write_never_corrupts() {
    let path = tmp("crash_points");
    let old = Snapshot {
        version: SNAPSHOT_VERSION,
        next_session: 3,
        epochs: 1,
        completed: Vec::new(),
        queued: Vec::new(),
    };
    write_snapshot(&path, &old).expect("seed snapshot");
    let newer = Snapshot {
        version: SNAPSHOT_VERSION,
        next_session: 9,
        epochs: 4,
        completed: Vec::new(),
        queued: Vec::new(),
    };
    for crash in [CrashPoint::MidWrite, CrashPoint::BeforeRename] {
        match write_snapshot_with_crash(&path, &newer, crash) {
            Err(SnapshotError::SimulatedCrash) => {}
            other => panic!("expected simulated crash, got {other:?}"),
        }
        let survived = load_snapshot(&path).expect("old snapshot must survive the crash");
        assert_eq!(survived, old, "crash at {crash:?} corrupted the snapshot");
    }
    // A completed write replaces it atomically.
    write_snapshot(&path, &newer).expect("clean write");
    assert_eq!(load_snapshot(&path).expect("reload"), newer);
    // Tampering (bit flip in the body) breaks the checksum: typed error,
    // never a half-parsed snapshot.
    let text = std::fs::read_to_string(&path).expect("read back");
    std::fs::write(&path, text.replace("next_session 9", "next_session 8")).expect("tamper");
    match load_snapshot(&path) {
        Err(SnapshotError::Corrupt { .. }) => {}
        other => panic!("tampered snapshot must not load, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Soak under the PR 4 chaos plan: every session resolves (liveness), the
/// queue never exceeds its bound (backpressure), and mean contract
/// satisfaction under chaos retains most of the clean baseline.
#[test]
fn soak_is_live_bounded_and_retains_slo() {
    caqe::faults::silence_injected_panics();
    let exec = ExecConfig::default().with_target_cells(400, 8);
    let chaos = exec
        .with_faults(
            FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.10, 8.0)
                .with_estimator_noise(0.20, 4.0)
                .with_corruption(0.02),
        )
        .with_validation(ValidationPolicy::Quarantine);
    let soak = SoakConfig {
        clients: 3,
        submits_per_client: 5,
        serve: ServeConfig {
            queue_bound: 5,
            epoch_batch: 3,
            ..ServeConfig::default()
        },
        ..SoakConfig::default()
    };
    let report = run_soak(
        &tables(400, 7),
        &catalog(),
        &exec,
        &chaos,
        &EngineConfig::caqe(),
        &soak,
    );
    assert_eq!(report.unresolved, 0, "liveness: a session never resolved");
    assert!(
        report.peak_depth <= report.queue_bound,
        "backpressure: peak depth {} exceeded bound {}",
        report.peak_depth,
        report.queue_bound
    );
    assert_eq!(
        report.submitted,
        report.accepted + report.rejected,
        "every submission must be answered"
    );
    assert!(report.completed > 0, "chaos run completed nothing");
    assert!(
        report.retention >= 0.75,
        "SLO retention {} collapsed under chaos",
        report.retention
    );
}

/// Every admission-path answer is typed: accept with a queue position,
/// queue-full and invalid rejects with reasons, cancel only while queued,
/// attach observing the terminal state.
#[test]
fn admission_paths_answer_typed() {
    let srv = server(ServeConfig {
        queue_bound: 2,
        epoch_batch: 2,
        ..ServeConfig::default()
    });
    let req = |catalog: usize| SubmitRequest {
        catalog,
        priority: 0.5,
        contract: Contract::LogDecay,
        deadline_ms: None,
    };
    // Invalid catalog index and out-of-range priority: typed rejects.
    match srv.submit(req(99)) {
        SubmitResponse::Rejected {
            reason: RejectReason::Invalid { .. },
            ..
        } => {}
        other => panic!("expected invalid reject, got {other:?}"),
    }
    match srv.submit(SubmitRequest {
        priority: 1.5,
        ..req(0)
    }) {
        SubmitResponse::Rejected {
            reason: RejectReason::Invalid { .. },
            ..
        } => {}
        other => panic!("expected invalid reject, got {other:?}"),
    }
    // Fill the queue; the third submission sees explicit backpressure.
    let first = match srv.submit(req(0)) {
        SubmitResponse::Accepted { session, position } => {
            assert_eq!(position, 0);
            session
        }
        other => panic!("expected accept, got {other:?}"),
    };
    let second = match srv.submit(req(1)) {
        SubmitResponse::Accepted { session, position } => {
            assert_eq!(position, 1);
            session
        }
        other => panic!("expected accept, got {other:?}"),
    };
    match srv.submit(req(2)) {
        SubmitResponse::Rejected {
            reason: RejectReason::QueueFull { depth, bound },
            ..
        } => assert_eq!((depth, bound), (2, 2)),
        other => panic!("expected queue-full reject, got {other:?}"),
    }
    // Cancel pops the second session; peers keep their answers.
    assert!(matches!(
        srv.status(second),
        Some(SessionState::Queued { position: 1 })
    ));
    assert!(srv.cancel(second), "queued session must be cancellable");
    assert!(!srv.cancel(second), "cancel is not idempotent-true");
    assert_eq!(srv.status(second), Some(SessionState::Cancelled));
    srv.drain();
    match srv.attach(first, Duration::from_secs(30)) {
        Some(SessionState::Done(result)) => {
            assert!(result.results > 0, "session produced nothing");
            assert!(!result.contract_adjusted);
        }
        other => panic!("expected done, got {other:?}"),
    }
    assert!(!srv.cancel(first), "terminal sessions cannot be cancelled");
    assert_eq!(srv.status(12345), None, "unknown session is None");
}

/// A queued session whose wall-clock deadline lapses before any epoch
/// picks it up expires with a typed state instead of running late.
#[test]
fn deadline_expiry_is_typed() {
    let srv = server(ServeConfig {
        queue_bound: 4,
        ..ServeConfig::default()
    });
    let doomed = match srv.submit(SubmitRequest {
        catalog: 0,
        priority: 0.5,
        contract: Contract::LogDecay,
        deadline_ms: Some(0),
    }) {
        SubmitResponse::Accepted { session, .. } => session,
        other => panic!("expected accept, got {other:?}"),
    };
    std::thread::sleep(Duration::from_millis(5));
    assert_eq!(srv.expire_overdue(), 1);
    assert_eq!(srv.status(doomed), Some(SessionState::DeadlineExpired));
    assert_eq!(srv.queue_depth(), 0, "expired session left the queue");
}

/// Negotiation downgrades inexpressible contract classes at the front
/// door and the session result records the adjustment.
#[test]
fn negotiation_downgrade_is_recorded() {
    let srv = server(ServeConfig::default());
    let session = match srv.submit(SubmitRequest {
        catalog: 0,
        priority: 0.5,
        contract: Contract::Piecewise {
            steps: vec![(0.5, 1.0)],
            tail: 0.1,
        },
        deadline_ms: None,
    }) {
        SubmitResponse::Accepted { session, .. } => session,
        other => panic!("expected accept, got {other:?}"),
    };
    srv.drain();
    match srv.attach(session, Duration::from_secs(30)) {
        Some(SessionState::Done(result)) => {
            assert!(
                result.contract_adjusted,
                "piecewise contract must be renegotiated"
            );
        }
        other => panic!("expected done, got {other:?}"),
    }
}
