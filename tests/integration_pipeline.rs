//! Cross-crate integration scenarios: contract variety, hybrid contracts,
//! multi-join-condition workloads, and semantic relationships between the
//! strategies.

use caqe::baselines::{JfslStrategy, ProgXeStrategy, SJfslStrategy, SsmjStrategy};
use caqe::contract::Contract;
use caqe::core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::MappingSet;
use caqe::types::DimMask;
use std::collections::BTreeSet;

fn tables(n: usize, dist: Distribution, seed: u64) -> (caqe::data::Table, caqe::data::Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn spec(pref: DimMask, priority: f64, contract: Contract) -> QuerySpec {
    QuerySpec {
        join_col: 0,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    }
}

#[test]
fn mixed_contract_workload_runs_end_to_end() {
    let (r, t) = tables(400, Distribution::Independent, 31);
    let w = Workload::new(vec![
        spec(
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 5.0 },
        ),
        spec(DimMask::from_dims([1, 2]), 0.7, Contract::LogDecay),
        spec(
            DimMask::from_dims([2, 3]),
            0.5,
            Contract::SoftDeadline { t_soft: 3.0 },
        ),
        spec(
            DimMask::from_dims([0, 3]),
            0.3,
            Contract::Quota {
                frac: 0.1,
                interval: 1.0,
            },
        ),
        spec(
            DimMask::from_dims([0, 1, 2]),
            0.1,
            Contract::Product(
                Box::new(Contract::LogDecay),
                Box::new(Contract::Deadline { t_hard: 20.0 }),
            ),
        ),
    ]);
    let exec = ExecConfig::default().with_target_cells(400, 8);
    let o = CaqeStrategy.run(&r, &t, &w, &exec);
    assert_eq!(o.per_query.len(), 5);
    assert!(o.total_results() > 0);
    for q in &o.per_query {
        assert!((0.0..=1.0).contains(&q.satisfaction));
    }
}

#[test]
fn progxe_equals_caqe_on_a_single_query_modulo_contracts() {
    // With one query there is nothing to arbitrate: ProgXe+'s count-driven
    // engine and CAQE produce the same result set (scheduling order may
    // differ, satisfaction may differ slightly, the *set* may not).
    let (r, t) = tables(300, Distribution::Independent, 32);
    let w = Workload::new(vec![spec(
        DimMask::from_dims([0, 2]),
        0.8,
        Contract::LogDecay,
    )]);
    let exec = ExecConfig::default().with_target_cells(300, 8);
    let a: BTreeSet<(u64, u64)> = CaqeStrategy.run(&r, &t, &w, &exec).per_query[0]
        .results
        .iter()
        .copied()
        .collect();
    let b: BTreeSet<(u64, u64)> = ProgXeStrategy.run(&r, &t, &w, &exec).per_query[0]
        .results
        .iter()
        .copied()
        .collect();
    assert_eq!(a, b);
}

#[test]
fn sjfsl_emits_everything_at_the_end() {
    let (r, t) = tables(300, Distribution::Independent, 33);
    let w = Workload::new(vec![
        spec(DimMask::from_dims([0, 1]), 0.9, Contract::LogDecay),
        spec(DimMask::from_dims([1, 2, 3]), 0.4, Contract::LogDecay),
    ]);
    let exec = ExecConfig::default().with_target_cells(300, 8);
    let o = SJfslStrategy.run(&r, &t, &w, &exec);
    // Blocking: first emission within a whisker of total runtime.
    let first = o
        .per_query
        .iter()
        .filter_map(|q| q.first_emission())
        .fold(f64::INFINITY, f64::min);
    assert!(
        first > o.virtual_seconds * 0.95,
        "S-JFSL emitted early: {first} of {}",
        o.virtual_seconds
    );
}

#[test]
fn jfsl_emits_in_strict_priority_order() {
    let (r, t) = tables(250, Distribution::Independent, 34);
    let w = Workload::new(vec![
        spec(DimMask::from_dims([0, 1]), 0.2, Contract::LogDecay),
        spec(DimMask::from_dims([1, 2]), 0.9, Contract::LogDecay),
        spec(DimMask::from_dims([2, 3]), 0.5, Contract::LogDecay),
    ]);
    let exec = ExecConfig::default().with_target_cells(250, 6);
    let o = JfslStrategy.run(&r, &t, &w, &exec);
    // Q2 (priority .9) finishes before Q3 (.5) before Q1 (.2).
    let last = |i: usize| o.per_query[i].last_emission().unwrap();
    let first = |i: usize| o.per_query[i].first_emission().unwrap();
    assert!(last(1) <= first(2), "Q2 did not precede Q3");
    assert!(last(2) <= first(0), "Q3 did not precede Q1");
}

#[test]
fn ssmj_is_progressive_within_a_query() {
    let (r, t) = tables(400, Distribution::Anticorrelated, 35);
    let w = Workload::new(vec![spec(
        DimMask::from_dims([0, 1, 2]),
        0.8,
        Contract::LogDecay,
    )]);
    let exec = ExecConfig::default().with_target_cells(400, 6);
    let o = SsmjStrategy.run(&r, &t, &w, &exec);
    let q = &o.per_query[0];
    assert!(q.count() > 10, "need enough results to observe spread");
    // Emissions spread over the run rather than arriving in one burst.
    let first = q.first_emission().unwrap();
    let last = q.last_emission().unwrap();
    assert!(
        last - first > 0.05 * o.virtual_seconds,
        "SSMJ emissions not spread: {first}..{last} of {}",
        o.virtual_seconds
    );
}

#[test]
fn workload_across_two_join_conditions_shares_within_groups() {
    let (r, t) = tables(400, Distribution::Independent, 36);
    let mapping = MappingSet::mixed(2, 2, 4);
    let mk = |col: usize, pref: DimMask| QuerySpec {
        join_col: col,
        mapping: mapping.clone(),
        pref,
        priority: 0.5,
        contract: Contract::LogDecay,
    };
    // Three queries on JC0, one on JC1.
    let w = Workload::new(vec![
        mk(0, DimMask::from_dims([0, 1])),
        mk(0, DimMask::from_dims([1, 2])),
        mk(0, DimMask::from_dims([0, 1, 2])),
        mk(1, DimMask::from_dims([2, 3])),
    ]);
    let exec = ExecConfig::default().with_target_cells(400, 6);
    let caqe = CaqeStrategy.run(&r, &t, &w, &exec);
    let jfsl = JfslStrategy.run(&r, &t, &w, &exec);
    // Result sets agree.
    for qi in 0..4 {
        let a: BTreeSet<_> = caqe.per_query[qi].results.iter().copied().collect();
        let b: BTreeSet<_> = jfsl.per_query[qi].results.iter().copied().collect();
        assert_eq!(a, b, "query {} mismatch", qi + 1);
    }
    // Sharing: JFSL joins ≈ 4 full joins; CAQE joins the JC0 input once
    // (minus pruning) plus the JC1 input once.
    assert!(caqe.stats.join_results < jfsl.stats.join_results / 2);
}

#[test]
fn priorities_steer_caqe_under_tight_deadlines() {
    // Two identical-shape queries, wildly different priorities and a
    // deadline only one can meet: the high-priority query should win more
    // utility.
    let (r, t) = tables(600, Distribution::Independent, 37);
    let probe = Workload::new(vec![
        spec(DimMask::from_dims([0, 1]), 0.5, Contract::LogDecay),
        spec(DimMask::from_dims([2, 3]), 0.5, Contract::LogDecay),
    ]);
    let exec = ExecConfig::default().with_target_cells(600, 10);
    let total = CaqeStrategy.run(&r, &t, &probe, &exec).virtual_seconds;
    let deadline = total * 0.4;
    let w = Workload::new(vec![
        spec(
            DimMask::from_dims([0, 1]),
            1.0,
            Contract::Deadline { t_hard: deadline },
        ),
        spec(
            DimMask::from_dims([2, 3]),
            0.05,
            Contract::Deadline { t_hard: deadline },
        ),
    ]);
    let o = CaqeStrategy.run(&r, &t, &w, &exec);
    assert!(
        o.per_query[0].satisfaction >= o.per_query[1].satisfaction,
        "priority inversion: {} vs {}",
        o.per_query[0].satisfaction,
        o.per_query[1].satisfaction
    );
}

#[test]
fn stats_are_internally_consistent() {
    let (r, t) = tables(300, Distribution::Correlated, 38);
    let w = Workload::new(vec![
        spec(DimMask::from_dims([0, 1]), 0.9, Contract::LogDecay),
        spec(DimMask::from_dims([1, 2, 3]), 0.3, Contract::LogDecay),
    ]);
    let exec = ExecConfig::default().with_target_cells(300, 8);
    for strategy in [
        Box::new(CaqeStrategy) as Box<dyn ExecutionStrategy>,
        Box::new(SJfslStrategy),
        Box::new(JfslStrategy),
    ] {
        let o = strategy.run(&r, &t, &w, &exec);
        assert!(o.stats.join_results <= o.stats.join_probes);
        assert_eq!(o.stats.tuples_emitted as usize, o.total_results());
        assert!(o.virtual_seconds > 0.0);
        assert!(o.wall_seconds >= 0.0);
        // Every emitted tuple cost at least its emission tick.
        assert!(
            o.virtual_seconds * exec.cost_model.ticks_per_second >= o.stats.tuples_emitted as f64
        );
    }
}
