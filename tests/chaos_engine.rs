//! Chaos acceptance suite for the deterministic fault-injection subsystem
//! (DESIGN.md §13). Four properties gate the robustness work:
//!
//! 1. **Containment** — no injected fault ever escapes as a process panic;
//!    every chaos run completes with `Ok` (or a *typed* error under the
//!    `Reject` validation policy).
//! 2. **Correctness under degradation** — whatever subset of results a
//!    degraded run emits, no emitted tuple is dominated by another emitted
//!    tuple for its query, and every emitted tuple is a genuine join result
//!    of the validated inputs.
//! 3. **Determinism** — for a fixed `(fault plan, seed)`, outcome *and*
//!    recorded trace are bit-identical at every worker-thread count.
//! 4. **Inertness** — with `FaultPlan::none()` and default policies, the
//!    engine reproduces the committed golden trace byte-for-byte: every
//!    fault hook is a strict no-op when disabled.

use caqe::contract::Contract;
use caqe::core::{
    CaqeStrategy, DegradationPolicy, ExecConfig, ExecutionStrategy, QuerySpec, RunOutcome, Workload,
};
use caqe::data::{validate_table, Distribution, Table, TableGenerator, ValidationPolicy};
use caqe::faults::{silence_injected_panics, FaultPlan};
use caqe::operators::{hash_join_project, skyline_reference, JoinSpec, MappingSet};
use caqe::types::{DimMask, EngineError, SimClock, Stats};
use std::collections::BTreeMap;

fn tables(n: usize, dist: Distribution, seed: u64) -> (Table, Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn workload() -> Workload {
    let spec = |col: usize, pref: DimMask, priority: f64, contract: Contract| QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    };
    Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ])
}

/// One chaos scenario: a fault plan plus the policies it runs under.
struct Scenario {
    label: &'static str,
    plan: FaultPlan,
    validation: ValidationPolicy,
    degradation: DegradationPolicy,
}

fn scenarios() -> Vec<Scenario> {
    let sc = |label, plan, validation| Scenario {
        label,
        plan,
        validation,
        degradation: DegradationPolicy::default(),
    };
    vec![
        sc(
            "panics",
            FaultPlan::seeded(3).with_panics(0.6),
            ValidationPolicy::Reject,
        ),
        sc(
            "panic-storm",
            FaultPlan::seeded(11).with_panics(1.0),
            ValidationPolicy::Reject,
        ),
        sc(
            "cost-spikes",
            FaultPlan::seeded(5).with_spikes(0.3, 8.0),
            ValidationPolicy::Reject,
        ),
        sc(
            "estimator-noise",
            FaultPlan::seeded(7).with_estimator_noise(0.4, 4.0),
            ValidationPolicy::Reject,
        ),
        sc(
            "corruption-quarantine",
            FaultPlan::seeded(9).with_corruption(0.05),
            ValidationPolicy::Quarantine,
        ),
        sc(
            "corruption-clamp",
            FaultPlan::seeded(13).with_corruption(0.05),
            ValidationPolicy::Clamp,
        ),
        sc(
            "everything",
            FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.1, 8.0)
                .with_estimator_noise(0.2, 4.0)
                .with_corruption(0.02),
            ValidationPolicy::Quarantine,
        ),
        Scenario {
            label: "everything+shedding",
            plan: FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.1, 8.0)
                .with_estimator_noise(0.2, 4.0)
                .with_corruption(0.02),
            validation: ValidationPolicy::Quarantine,
            degradation: DegradationPolicy {
                sat_floor: 0.9,
                grace_ticks: 10_000,
            },
        },
    ]
}

fn exec_for(sc: &Scenario, n: usize, cells: usize) -> ExecConfig {
    ExecConfig::default()
        .with_target_cells(n, cells)
        .with_faults(sc.plan)
        .with_validation(sc.validation)
        .with_degradation(sc.degradation)
}

/// Reconstructs the table the engine actually processed: the fault plan's
/// corruption pass followed by the validation policy — the same pipeline
/// `prepare_inputs` runs.
fn effective_table(plan: &FaultPlan, policy: ValidationPolicy, table: &Table) -> Table {
    let corrupted = plan.corrupt_table(table);
    let validated = validate_table(&corrupted, policy).expect("scenario policies never reject");
    validated.table.unwrap_or(corrupted)
}

/// Asserts every observable of two outcomes matches exactly (f64 included:
/// the virtual clock is integer ticks underneath, so equality is exact).
fn assert_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(
        a.virtual_seconds.to_bits(),
        b.virtual_seconds.to_bits(),
        "{label}: virtual clock diverged"
    );
    assert_eq!(a.per_query.len(), b.per_query.len());
    for (qa, qb) in a.per_query.iter().zip(&b.per_query) {
        assert_eq!(
            qa.results, qb.results,
            "{label}: result provenance diverged"
        );
        assert_eq!(
            qa.emissions.len(),
            qb.emissions.len(),
            "{label}: emission count diverged"
        );
        for (ea, eb) in qa.emissions.iter().zip(&qb.emissions) {
            assert_eq!(
                (ea.0.to_bits(), ea.1.to_bits()),
                (eb.0.to_bits(), eb.1.to_bits()),
                "{label}: emission (ts, utility) diverged"
            );
        }
        assert_eq!(
            qa.satisfaction.to_bits(),
            qb.satisfaction.to_bits(),
            "{label}: satisfaction diverged"
        );
    }
}

/// Gate 1 + 2: every scenario completes without an escaped panic, and the
/// (possibly degraded) result sets stay internally non-dominated and
/// provenance-correct against the validated inputs.
#[test]
fn faults_are_contained_and_results_stay_non_dominated() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800, Distribution::Independent, 42);
    for sc in scenarios() {
        let exec = exec_for(&sc, 800, 4);
        let outcome = CaqeStrategy
            .try_run(&r, &t, &w, &exec)
            .unwrap_or_else(|e| panic!("{}: chaos run failed: {e}", sc.label));

        // Oracle join over the tables the engine actually saw.
        let r_eff = effective_table(&sc.plan, sc.validation, &r);
        let t_eff = effective_table(&sc.plan, sc.validation, &t);
        let mut clock = SimClock::default();
        let mut stats = Stats::new();
        for (qi, spec) in w.queries().iter().enumerate() {
            let join = hash_join_project(
                r_eff.records(),
                t_eff.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let by_pair: BTreeMap<(u64, u64), &Vec<f64>> =
                join.iter().map(|o| ((o.rid, o.tid), &o.vals)).collect();
            let emitted = &outcome.per_query[qi].results;
            let pts: Vec<Vec<f64>> = emitted
                .iter()
                .map(|pair| {
                    (*by_pair.get(pair).unwrap_or_else(|| {
                        panic!(
                            "{}: query {} emitted {:?}, not a join result of the validated inputs",
                            sc.label,
                            qi + 1,
                            pair
                        )
                    }))
                    .clone()
                })
                .collect();
            let sky = skyline_reference(&pts, spec.pref);
            assert_eq!(
                sky.len(),
                pts.len(),
                "{}: query {} emitted a dominated tuple ({} of {} survive)",
                sc.label,
                qi + 1,
                sky.len(),
                pts.len()
            );
        }
    }
}

/// Gate 1, recovery counters: a high panic rate actually exercises the
/// retry ladder into quarantine, and forced shedding actually sheds — the
/// chaos suite would be vacuous if the fault paths never fired.
#[test]
fn recovery_and_shedding_paths_actually_fire() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800, Distribution::Independent, 42);

    let storm = exec_for(&scenarios()[1], 800, 4); // panic rate 1.0
    let out = CaqeStrategy.try_run(&r, &t, &w, &storm).expect("contained");
    assert!(out.stats.region_retries > 0, "no retries under panic storm");
    assert!(
        out.stats.regions_quarantined > 0,
        "no quarantines under panic storm"
    );

    let shed_exec = ExecConfig::default()
        .with_target_cells(800, 4)
        .with_degradation(DegradationPolicy {
            sat_floor: 1.01, // unreachable floor: shedding fires at every check
            grace_ticks: 5_000,
        });
    let out = CaqeStrategy.try_run(&r, &t, &w, &shed_exec).expect("clean");
    assert!(out.stats.regions_shed > 0, "forced shedding shed nothing");
}

/// Gate 2 regression, satellite of the online-session work: the shed check
/// averages satisfaction over *unfinished* queries only. A query whose
/// every serving region is done is as satisfied as it will ever be — under
/// the old all-queries mean, one such completed high-satisfaction query
/// could hold the average above the floor forever while an unfinished peer
/// starved at satisfaction ~0, and shedding never fired.
#[test]
fn completed_query_cannot_mask_a_starving_one() {
    silence_injected_panics();
    // Query A: generous contract over the sparse join — finishes early with
    // satisfaction ≈ 1. Query B: an already-expired hard deadline over the
    // dense join — every emission scores 0, so B starves at satisfaction 0
    // for the rest of the run.
    let w = Workload::new(vec![
        QuerySpec {
            join_col: 0,
            mapping: MappingSet::mixed(2, 2, 4),
            pref: DimMask::from_dims([0, 1]),
            priority: 0.9,
            contract: Contract::LogDecay,
        },
        QuerySpec {
            join_col: 1,
            mapping: MappingSet::mixed(2, 2, 4),
            pref: DimMask::from_dims([2, 3]),
            priority: 0.5,
            contract: Contract::Deadline { t_hard: 1e-6 },
        },
    ]);
    let gen = TableGenerator::new(800, 2, Distribution::Independent)
        .with_selectivities(&[0.02, 0.2])
        .with_seed(42);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let floor = 0.4;
    let exec = ExecConfig::default()
        .with_target_cells(800, 4)
        .with_degradation(DegradationPolicy {
            sat_floor: floor,
            grace_ticks: 100_000,
        });
    let out = CaqeStrategy.try_run(&r, &t, &w, &exec).expect("clean");
    // The masking premise: averaged over *all* queries (A included), the
    // workload sits above the floor — the old check would never have fired.
    assert!(
        out.per_query[0].satisfaction > 0.8,
        "scenario broken: the completed query is not highly satisfied ({})",
        out.per_query[0].satisfaction
    );
    assert!(
        (out.per_query[0].satisfaction + out.per_query[1].satisfaction) / 2.0 > floor,
        "scenario broken: the all-queries mean fell below the floor anyway"
    );
    // The unfinished-only mean sees B starving and sheds.
    assert!(
        out.stats.regions_shed > 0,
        "completed query masked the starving one: no shedding fired"
    );
}

/// Typed errors: corrupt input under the `Reject` policy surfaces as
/// `EngineError::CorruptInput` — never a panic, never a silent pass.
#[test]
fn reject_policy_reports_corruption_as_typed_error() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(400, Distribution::Independent, 42);
    let exec = ExecConfig::default()
        .with_target_cells(400, 4)
        .with_faults(FaultPlan::seeded(9).with_corruption(0.2))
        .with_validation(ValidationPolicy::Reject);
    match CaqeStrategy.try_run(&r, &t, &w, &exec) {
        Err(EngineError::CorruptInput {
            non_finite,
            duplicates,
            ..
        }) => {
            assert!(non_finite + duplicates > 0, "empty corruption report");
        }
        other => panic!("expected CorruptInput, got {other:?}"),
    }
}

/// Gate 3: under every fault plan, outcome and full trace are a pure
/// function of `(plan, seed)` — bit-identical across worker-thread counts.
#[test]
fn chaos_outcome_and_trace_bit_identical_across_threads() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800, Distribution::Independent, 42);
    for sc in scenarios() {
        let serial = exec_for(&sc, 800, 4);
        let mut base_sink = caqe::trace::RecordingSink::new();
        let base = CaqeStrategy
            .try_run_traced(&r, &t, &w, &serial, &mut base_sink)
            .unwrap_or_else(|e| panic!("{}: serial chaos run failed: {e}", sc.label));
        let base_jsonl = caqe::trace::to_jsonl(base_sink.events());
        for threads in [1usize, 2, 4, 8] {
            let par = serial.with_parallelism(Some(threads));
            let mut sink = caqe::trace::RecordingSink::new();
            let out = CaqeStrategy
                .try_run_traced(&r, &t, &w, &par, &mut sink)
                .unwrap_or_else(|e| panic!("{}: threads={threads} failed: {e}", sc.label));
            assert_identical(&base, &out, &format!("{} threads={threads}", sc.label));
            assert_eq!(
                base_jsonl,
                caqe::trace::to_jsonl(sink.events()),
                "{}: trace bytes diverged at threads={threads}",
                sc.label
            );
        }
    }
}

/// Gate 4: with faults disabled and default policies, every hook is a
/// strict no-op — the run reproduces the committed golden trace
/// byte-for-byte (same fixed workload as `determinism_parallel.rs`).
#[test]
fn inert_fault_plan_reproduces_committed_golden() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default()
        .with_target_cells(1600, 2)
        .with_faults(FaultPlan::none())
        .with_validation(ValidationPolicy::default())
        .with_degradation(DegradationPolicy::default());
    let mut sink = caqe::trace::RecordingSink::new();
    let out = CaqeStrategy
        .try_run_traced(&r, &t, &w, &exec, &mut sink)
        .expect("clean run");
    assert!(out.total_results() > 0, "degenerate workload");
    let jsonl = caqe::trace::to_jsonl(sink.events());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/caqe_trace.jsonl");
    let golden = std::fs::read_to_string(path).expect("missing golden trace");
    assert_eq!(
        golden, jsonl,
        "disabled fault hooks perturbed the golden trace"
    );
}
