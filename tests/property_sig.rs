//! Property-based tests of the partition-signature pruning layer
//! (DESIGN.md §17): the SWAR signature relation must be *sound* against
//! the exact float dominance relation on arbitrary inputs, and every
//! pruned path — the batch kernels and the shared plan's signature cache
//! at every thread count — must be observationally identical to its
//! scalar twin (results, charged comparisons, virtual ticks).

use caqe::cuboid::{MinMaxCuboid, SharedInsert, SharedSkylinePlan};
use caqe::operators::{
    sfs_order, skyline_bnl_pruned, skyline_bnl_store_scalar, skyline_sfs_presorted_pruned,
    skyline_sfs_presorted_scalar, IncrementalSkyline, SigSkyline,
};
use caqe::parallel::Threads;
use caqe::types::sig::{sig_relate, SigQuantizer, SigTable, SIG_POISON};
use caqe::types::{relate_in, DimMask, DomKernel, PointStore, QueryId, SimClock, Stats, Value};
use proptest::prelude::*;

/// Lattice-valued rows at a fixed stride `d`: coarse values force ties and
/// duplicates; `nan_mask` poisons dimension `k` of every row for each set
/// bit `k` (uniform poison keeps dominance a strict partial order, which
/// the scalar reference relies on).
fn rows_strategy(d: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, u32)> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u8..10).prop_map(|v| v as f64 / 3.0), d..=d),
            1..80,
        ),
        0u32..(1 << d.min(3)),
    )
}

fn store_of(rows: &[Vec<f64>], nan_mask: u32, d: usize) -> PointStore {
    let mut store = PointStore::new(d);
    let mut row = vec![0.0; d];
    for r in rows {
        row.copy_from_slice(r);
        for (k, v) in row.iter_mut().enumerate() {
            if nan_mask & (1 << k) != 0 {
                *v = Value::NAN;
            }
        }
        store.push(&row);
    }
    store
}

/// A random non-empty subspace of `d` dimensions.
fn mask_for(d: usize, bits: u32) -> DimMask {
    let m = bits % ((1u32 << d) - 1) + 1;
    DimMask(m)
}

proptest! {
    /// Soundness: whenever `sig_relate` returns a proven verdict for a pair
    /// of quantized signatures, the exact float relation agrees — on every
    /// stride 2..=8, with ties, duplicates and NaN-poisoned dimensions.
    #[test]
    fn sig_relate_is_sound_against_relate_in(
        (rows, nan_mask) in (2usize..=8).prop_flat_map(rows_strategy),
        bits in 1u32..256,
    ) {
        let d = rows[0].len();
        let store = store_of(&rows, nan_mask, d);
        let mask = mask_for(d, bits);
        let Some(quant) = SigQuantizer::from_store(&store, mask) else {
            return Ok(()); // unquantizable subspace: nothing to prove
        };
        let h = quant.high_mask();
        let sigs: Vec<u64> = (0..store.len()).map(|i| quant.sig(store.at(i))).collect();
        for i in 0..store.len() {
            for j in 0..store.len() {
                if let Some(v) = sig_relate(sigs[i], sigs[j], h) {
                    prop_assert_eq!(
                        v,
                        relate_in(store.at(i), store.at(j), mask),
                        "proven verdict wrong for pair ({}, {}) over {}",
                        i, j, mask
                    );
                }
            }
        }
    }

    /// NaN on *both* sides: two poisoned points have no provable relation
    /// in either direction — `sig_relate` must refuse a verdict for
    /// poison-vs-poison (and poison-vs-clean) under every quantizer, and
    /// under the degenerate `high_mask = 0` no caller should ever pass.
    #[test]
    fn poison_vs_poison_refuses_a_verdict(
        (rows, _) in (2usize..=8).prop_flat_map(rows_strategy),
        bits in 1u32..256,
        (i_pick, j_pick) in (0usize..80, 0usize..80),
    ) {
        let d = rows[0].len();
        let clean = store_of(&rows, 0, d);
        let mask = mask_for(d, bits);
        let Some(quant) = SigQuantizer::from_store(&clean, mask) else {
            return Ok(());
        };
        let h = quant.high_mask();
        // Poison one masked dimension of two arbitrary rows: their
        // signatures both collapse to SIG_POISON.
        let k = (0..d).find(|k| mask.contains(*k)).expect("non-empty mask");
        let (i, j) = (i_pick % rows.len(), j_pick % rows.len());
        let mut a_point = rows[i].clone();
        let mut b_point = rows[j].clone();
        a_point[k] = Value::NAN;
        b_point[k] = Value::NAN;
        let a = quant.sig(&a_point);
        let b = quant.sig(&b_point);
        prop_assert_eq!(a, SIG_POISON);
        prop_assert_eq!(b, SIG_POISON);
        prop_assert_eq!(sig_relate(a, b, h), None, "poison vs poison proved a verdict");
        // Poison against a clean signature, both directions.
        let c = quant.sig(&rows[j]);
        prop_assert_eq!(sig_relate(a, c, h), None, "poison vs clean proved a verdict");
        prop_assert_eq!(sig_relate(c, b, h), None, "clean vs poison proved a verdict");
        // Hardened path: even a (hypothetical) caller passing high = 0
        // must not extract a verdict from two poison values.
        prop_assert_eq!(sig_relate(SIG_POISON, SIG_POISON, 0), None);
    }

    /// The pruned batch kernels and the pruned streaming skyline are
    /// observationally identical to their scalar twins: same result set,
    /// same member order, same charged comparisons, same virtual ticks.
    #[test]
    fn pruned_kernels_match_scalar_observables(
        (rows, nan_mask) in (2usize..=6).prop_flat_map(rows_strategy),
        bits in 1u32..64,
    ) {
        let d = rows[0].len();
        let store = store_of(&rows, nan_mask, d);
        let mask = mask_for(d, bits);
        let kernel = DomKernel::new(mask, d);
        let mut s0 = Stats::new();
        let Some(table) = SigTable::try_build(&store, mask, &mut s0) else {
            return Ok(());
        };

        // BNL.
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let scalar = skyline_bnl_store_scalar(&store, &kernel, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let pruned = skyline_bnl_pruned(&store, &kernel, &table, &mut c2, &mut s2);
        prop_assert_eq!(&scalar, &pruned, "BNL result diverged");
        prop_assert_eq!(c1.ticks(), c2.ticks(), "BNL ticks diverged");
        prop_assert_eq!(s1.observable(), s2.observable(), "BNL stats diverged");

        // SFS over the same presort (skip when a NaN score column would
        // void the monotone-presort invariant SFS rests on).
        if nan_mask == 0 {
            let order = sfs_order(&store, &kernel);
            let mut c1 = SimClock::default();
            let mut s1 = Stats::new();
            let scalar =
                skyline_sfs_presorted_scalar(&store, &kernel, &order, &mut c1, &mut s1);
            let mut c2 = SimClock::default();
            let mut s2 = Stats::new();
            let pruned = skyline_sfs_presorted_pruned(
                &store, &kernel, &order, &table, &mut c2, &mut s2,
            );
            prop_assert_eq!(&scalar, &pruned, "SFS result diverged");
            prop_assert_eq!(c1.ticks(), c2.ticks(), "SFS ticks diverged");
            prop_assert_eq!(s1.observable(), s2.observable(), "SFS stats diverged");
        }

        // Streaming insert: outcomes and member order per step.
        let mut inc = IncrementalSkyline::new(mask);
        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let mut sig = SigSkyline::new(mask, table.quantizer().clone());
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        for i in 0..store.len() {
            let a = inc.insert_scalar(i as u64, store.at(i), &mut c1, &mut s1);
            let b = sig.insert_sig(i as u64, store.at(i), table.sig(i), &mut c2, &mut s2);
            prop_assert_eq!(a, b, "streaming outcome diverged at point {}", i);
        }
        prop_assert_eq!(
            inc.tags().collect::<Vec<_>>(),
            sig.tags().collect::<Vec<_>>(),
            "streaming member order diverged"
        );
        prop_assert_eq!(c1.ticks(), c2.ticks(), "streaming ticks diverged");
        prop_assert_eq!(s1.observable(), s2.observable(), "streaming stats diverged");
    }

    /// The shared plan's signature cache is observationally invisible at
    /// every thread count: batched inserts with screening enabled match the
    /// serial scalar plan byte-for-byte — results, ticks, observable stats
    /// and every query's skyline.
    #[test]
    fn plan_sig_cache_is_invisible_at_any_thread_count(
        rows in proptest::collection::vec(
            proptest::collection::vec((0u8..12).prop_map(|v| v as f64), 4..=4),
            4..60,
        ),
        pref_bits in proptest::collection::vec(1u32..16, 1..4),
    ) {
        let prefs: Vec<DimMask> = pref_bits.iter().map(|&b| mask_for(4, b)).collect();
        let mut serial = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), false);
        let mut sc = SimClock::default();
        let mut ss = Stats::new();
        let serial_results: Vec<SharedInsert> = rows
            .iter()
            .enumerate()
            .map(|(i, p)| serial.insert(i as u64, p, &mut sc, &mut ss))
            .collect();
        let stride = 4;
        let flat: Vec<Value> = rows.iter().flatten().copied().collect();
        for workers in [1usize, 2, 4, 8] {
            let mut plan = SharedSkylinePlan::new(MinMaxCuboid::build(&prefs), false);
            plan.enable_sig_cache(&[0.0; 4], &[12.0; 4]);
            let mut clock = SimClock::default();
            let mut stats = Stats::new();
            let mut results = Vec::new();
            let mut off = 0usize;
            // Uneven batch sizes so shard creation sees carried members.
            let mut chunk = 3usize;
            while off < rows.len() {
                let take = chunk.min(rows.len() - off);
                results.extend(plan.insert_batch(
                    off as u64,
                    &flat[off * stride..(off + take) * stride],
                    stride,
                    Threads::exact(workers),
                    &mut clock,
                    &mut stats,
                ));
                off += take;
                chunk = chunk * 2 + 1;
            }
            prop_assert_eq!(
                &results, &serial_results,
                "screened batch results diverged at {} threads", workers
            );
            prop_assert_eq!(clock.ticks(), sc.ticks(), "ticks diverged at {} threads", workers);
            prop_assert_eq!(
                stats.observable(), ss.observable(),
                "observable stats diverged at {} threads", workers
            );
            for q in 0..prefs.len() {
                let qid = QueryId(q as u16);
                prop_assert_eq!(
                    plan.query_skyline_tags(qid),
                    serial.query_skyline_tags(qid),
                    "query {} skyline diverged at {} threads", q, workers
                );
            }
        }
    }
}
