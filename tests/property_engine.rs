//! Property-based tests of the full engine: on arbitrary small workloads,
//! every strategy must produce exactly the definitional result set, and
//! progressive emission must never retract.

use caqe::baselines::all_strategies;
use caqe::contract::Contract;
use caqe::core::{ExecConfig, QuerySpec, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::{hash_join_project, skyline_reference, JoinSpec, MappingSet};
use caqe::types::{DimMask, SimClock, Stats};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    dist: Distribution,
    sigma: f64,
    seed: u64,
    prefs: Vec<DimMask>,
    cells: usize,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let dist = prop_oneof![
        Just(Distribution::Independent),
        Just(Distribution::Correlated),
        Just(Distribution::Anticorrelated),
    ];
    (
        50usize..200,
        dist,
        prop_oneof![Just(0.02), Just(0.05), Just(0.2)],
        any::<u64>(),
        proptest::collection::vec(1u32..15, 1..4),
        3usize..10,
    )
        .prop_map(|(n, dist, sigma, seed, pref_bits, cells)| Scenario {
            n,
            dist,
            sigma,
            seed,
            prefs: pref_bits
                .into_iter()
                .map(|b| {
                    let m = b % 15;
                    if m == 0 {
                        DimMask::full(4)
                    } else {
                        DimMask(m)
                    }
                })
                .collect(),
            cells,
        })
}

fn reference(
    r: &caqe::data::Table,
    t: &caqe::data::Table,
    w: &Workload,
) -> Vec<BTreeSet<(u64, u64)>> {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    w.queries()
        .iter()
        .map(|spec| {
            let join = hash_join_project(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let pts: Vec<Vec<f64>> = join.iter().map(|o| o.vals.clone()).collect();
            skyline_reference(&pts, spec.pref)
                .into_iter()
                .map(|i| (join[i].rid, join[i].tid))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_strategy_is_exact(sc in scenario_strategy()) {
        let gen = TableGenerator::new(sc.n, 2, sc.dist)
            .with_selectivities(&[sc.sigma])
            .with_seed(sc.seed);
        let (r, t) = (gen.generate("R"), gen.generate("T"));
        let mapping = MappingSet::mixed(2, 2, 4);
        let w = Workload::new(
            sc.prefs
                .iter()
                .enumerate()
                .map(|(i, &pref)| QuerySpec {
                    join_col: 0,
                    mapping: mapping.clone(),
                    pref,
                    priority: 0.2 + 0.1 * (i as f64 % 8.0),
                    contract: Contract::LogDecay,
                })
                .collect(),
        );
        let exec = ExecConfig::default().with_target_cells(sc.n, sc.cells);
        let want = reference(&r, &t, &w);
        for strategy in all_strategies() {
            let outcome = strategy.run(&r, &t, &w, &exec);
            for (qi, expect) in want.iter().enumerate() {
                let got: BTreeSet<(u64, u64)> =
                    outcome.per_query[qi].results.iter().copied().collect();
                prop_assert_eq!(
                    &got,
                    expect,
                    "{} wrong on query {} ({:?}, n={}, σ={}, cells={})",
                    outcome.strategy,
                    qi + 1,
                    sc.dist,
                    sc.n,
                    sc.sigma,
                    sc.cells
                );
                // No duplicate emissions.
                prop_assert_eq!(got.len(), outcome.per_query[qi].results.len());
                // Timestamps are monotone.
                for w2 in outcome.per_query[qi].emissions.windows(2) {
                    prop_assert!(w2[0].0 <= w2[1].0);
                }
            }
        }
    }

    #[test]
    fn satisfaction_bounds_hold(sc in scenario_strategy()) {
        let gen = TableGenerator::new(sc.n, 2, sc.dist)
            .with_selectivities(&[sc.sigma])
            .with_seed(sc.seed);
        let (r, t) = (gen.generate("R"), gen.generate("T"));
        let mapping = MappingSet::mixed(2, 2, 4);
        let w = Workload::new(
            sc.prefs
                .iter()
                .map(|&pref| QuerySpec {
                    join_col: 0,
                    mapping: mapping.clone(),
                    pref,
                    priority: 0.5,
                    contract: Contract::Deadline { t_hard: 2.0 },
                })
                .collect(),
        );
        let exec = ExecConfig::default().with_target_cells(sc.n, sc.cells);
        for strategy in all_strategies() {
            let o = strategy.run(&r, &t, &w, &exec);
            prop_assert!((0.0..=1.0).contains(&o.avg_satisfaction()));
            for q in &o.per_query {
                prop_assert!((0.0..=1.0).contains(&q.satisfaction));
                // pScore never exceeds the result count for [0,1] utilities.
                prop_assert!(q.p_score <= q.count() as f64 + 1e-9);
            }
            prop_assert!(o.virtual_seconds >= 0.0);
        }
    }
}
