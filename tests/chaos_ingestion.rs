//! Property tests for ingestion validation (DESIGN.md §13): whatever
//! corruption is injected — NaN/±Inf preference values, duplicated record
//! ids — validation policies never change skyline results *for the clean
//! subset* of records:
//!
//! - **Quarantine** is exact: running the engine on the corrupted tables
//!   equals the definitional skyline over the join of the clean subsets.
//! - **Clamp** is conservative: every emitted result pair made of clean
//!   records belongs to the clean-subset skyline (the sentinel is strictly
//!   worse than every clean value per column, so a clamped tuple can never
//!   push a spurious clean pair *into* the result), and the full emitted
//!   set is exactly the skyline of the clamped join.
//! - **Reject** is total: it errors with a typed `CorruptInput` if and
//!   only if a table is corrupt, and degenerates to Quarantine on clean
//!   input.

use caqe::contract::Contract;
use caqe::core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, Workload};
use caqe::data::{validate_table, Distribution, Table, TableGenerator, ValidationPolicy};
use caqe::operators::{hash_join_project, skyline_reference, JoinSpec, MappingSet};
use caqe::types::{DimMask, EngineError, SimClock, Stats};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One injected corruption: which row, which dim, which non-finite value.
#[derive(Debug, Clone, Copy)]
enum Corruption {
    NonFinite { row: u16, dim: u8, kind: u8 },
    DuplicateId { row: u16 },
}

fn corruption_strategy() -> impl Strategy<Value = Vec<Corruption>> {
    let one =
        prop_oneof![
            (any::<u16>(), any::<u8>(), 0u8..3)
                .prop_map(|(row, dim, kind)| Corruption::NonFinite { row, dim, kind }),
            (1u16..u16::MAX).prop_map(|row| Corruption::DuplicateId { row }),
        ];
    proptest::collection::vec(one, 0..10)
}

fn corrupt(table: &Table, plan: &[Corruption]) -> Table {
    let mut records = table.records().to_vec();
    for c in plan {
        match *c {
            Corruption::NonFinite { row, dim, kind } => {
                let i = row as usize % records.len();
                let k = dim as usize % records[i].vals.len();
                records[i].vals[k] = match kind {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => f64::NEG_INFINITY,
                };
            }
            Corruption::DuplicateId { row } => {
                // Copy an earlier record's id forward; first occurrence
                // stays clean under first-occurrence-wins validation.
                let i = (row as usize % (records.len() - 1)) + 1;
                records[i].id = records[i - 1].id;
            }
        }
    }
    Table::new(table.name(), table.dims(), table.join_cols(), records)
}

/// The clean subset under the validator's own semantics: finite values and
/// first-occurrence-wins on ids.
fn clean_subset(table: &Table) -> Table {
    validate_table(table, ValidationPolicy::Quarantine)
        .expect("quarantine never rejects")
        .table
        .unwrap_or_else(|| table.clone())
}

fn clean_ids(table: &Table) -> BTreeSet<u64> {
    table.records().iter().map(|r| r.id).collect()
}

/// Definitional per-query skylines over the join of two tables.
fn reference(r: &Table, t: &Table, w: &Workload) -> Vec<BTreeSet<(u64, u64)>> {
    let mut clock = SimClock::default();
    let mut stats = Stats::new();
    w.queries()
        .iter()
        .map(|spec| {
            let join = hash_join_project(
                r.records(),
                t.records(),
                JoinSpec::on_column(spec.join_col),
                &spec.mapping,
                &mut clock,
                &mut stats,
            );
            let pts: Vec<Vec<f64>> = join.iter().map(|o| o.vals.clone()).collect();
            skyline_reference(&pts, spec.pref)
                .into_iter()
                .map(|i| (join[i].rid, join[i].tid))
                .collect()
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    seed: u64,
    prefs: Vec<DimMask>,
    cells: usize,
    plan_r: Vec<Corruption>,
    plan_t: Vec<Corruption>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        50usize..150,
        any::<u64>(),
        proptest::collection::vec(1u32..15, 1..3),
        3usize..8,
        corruption_strategy(),
        corruption_strategy(),
    )
        .prop_map(|(n, seed, pref_bits, cells, plan_r, plan_t)| Scenario {
            n,
            seed,
            prefs: pref_bits.into_iter().map(|b| DimMask(b % 15 + 1)).collect(),
            cells,
            plan_r,
            plan_t,
        })
}

fn setup(sc: &Scenario) -> (Table, Table, Workload, ExecConfig) {
    let gen = TableGenerator::new(sc.n, 2, Distribution::Independent)
        .with_selectivities(&[0.05])
        .with_seed(sc.seed);
    let (r, t) = (gen.generate("R"), gen.generate("T"));
    let mapping = MappingSet::mixed(2, 2, 4);
    let w = Workload::new(
        sc.prefs
            .iter()
            .map(|&pref| QuerySpec {
                join_col: 0,
                mapping: mapping.clone(),
                pref,
                priority: 0.5,
                contract: Contract::LogDecay,
            })
            .collect(),
    );
    let exec = ExecConfig::default().with_target_cells(sc.n, sc.cells);
    (corrupt(&r, &sc.plan_r), corrupt(&t, &sc.plan_t), w, exec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quarantine_preserves_the_clean_subset_skyline(sc in scenario_strategy()) {
        let (r, t, w, exec) = setup(&sc);
        let (clean_r, clean_t) = (clean_subset(&r), clean_subset(&t));
        let want = reference(&clean_r, &clean_t, &w);
        let outcome = CaqeStrategy
            .try_run(&r, &t, &w, &exec.with_validation(ValidationPolicy::Quarantine))
            .expect("quarantine never rejects");
        for (qi, expect) in want.iter().enumerate() {
            let got: BTreeSet<(u64, u64)> =
                outcome.per_query[qi].results.iter().copied().collect();
            prop_assert_eq!(
                &got, expect,
                "quarantine changed the clean-subset skyline on query {} (n={}, seed={})",
                qi + 1, sc.n, sc.seed
            );
        }
    }

    #[test]
    fn clamp_never_emits_spurious_clean_pairs(sc in scenario_strategy()) {
        let (r, t, w, exec) = setup(&sc);
        let (clean_r, clean_t) = (clean_subset(&r), clean_subset(&t));
        let clean_sky = reference(&clean_r, &clean_t, &w);
        let (rid_ok, tid_ok) = (clean_ids(&clean_r), clean_ids(&clean_t));
        // The engine must be exact over the clamped join, and any result
        // pair made of clean records must be a clean-subset skyline member
        // (clamped tuples may shadow clean ones, never promote them).
        let clamped_r = clean_subset_for_clamp(&r);
        let clamped_t = clean_subset_for_clamp(&t);
        let clamped_sky = reference(&clamped_r, &clamped_t, &w);
        let outcome = CaqeStrategy
            .try_run(&r, &t, &w, &exec.with_validation(ValidationPolicy::Clamp))
            .expect("clamp never rejects");
        for qi in 0..w.len() {
            let got: BTreeSet<(u64, u64)> =
                outcome.per_query[qi].results.iter().copied().collect();
            prop_assert_eq!(
                &got, &clamped_sky[qi],
                "clamp run is not exact over the clamped join on query {}", qi + 1
            );
            for pair in &got {
                if rid_ok.contains(&pair.0) && tid_ok.contains(&pair.1) {
                    prop_assert!(
                        clean_sky[qi].contains(pair),
                        "clamp emitted clean pair {:?} outside the clean-subset skyline \
                         on query {} (n={}, seed={})",
                        pair, qi + 1, sc.n, sc.seed
                    );
                }
            }
        }
    }

    #[test]
    fn reject_errors_iff_corrupt(sc in scenario_strategy()) {
        let (r, t, w, exec) = setup(&sc);
        let dirty = |table: &Table| {
            !validate_table(table, ValidationPolicy::Quarantine)
                .expect("quarantine never rejects")
                .report
                .is_clean()
        };
        let corrupt_input = dirty(&r) || dirty(&t);
        match CaqeStrategy.try_run(&r, &t, &w, &exec.with_validation(ValidationPolicy::Reject)) {
            Err(EngineError::CorruptInput { non_finite, duplicates, .. }) => {
                prop_assert!(corrupt_input, "Reject errored on clean input");
                prop_assert!(non_finite + duplicates > 0, "empty corruption report");
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
            Ok(outcome) => {
                prop_assert!(!corrupt_input, "Reject let corrupt input through");
                // On clean input every policy degenerates to the same run.
                let q = CaqeStrategy
                    .try_run(&r, &t, &w, &exec.with_validation(ValidationPolicy::Quarantine))
                    .expect("clean");
                for (a, b) in outcome.per_query.iter().zip(&q.per_query) {
                    prop_assert_eq!(&a.results, &b.results);
                }
            }
        }
    }
}

/// The table the engine sees under `Clamp`: duplicates dropped, non-finite
/// values replaced by the per-column sentinel.
fn clean_subset_for_clamp(table: &Table) -> Table {
    validate_table(table, ValidationPolicy::Clamp)
        .expect("clamp never rejects")
        .table
        .unwrap_or_else(|| table.clone())
}
