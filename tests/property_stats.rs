//! Property tests for the `Stats` / `PerQueryStats` merge algebra.
//!
//! The parallel layer folds per-shard `Stats` with `+=` in chunk-index
//! order, and the metrics layer re-derives the same totals from traces —
//! both are only sound if the merge is associative and (for the
//! commutative counter fields) insensitive to shard order. `utility_sum`
//! is the one `f64` in the structure; the engine keeps it exactly
//! mergeable by only ever adding dyadic-rational utilities here, so the
//! generators below draw multiples of 0.25 — for which f64 addition is
//! exact — and demand *bit* equality, not approximate equality.

use caqe::types::{PerQueryStats, Stats};
use proptest::prelude::*;

/// The 30 global `u64` counters, bounded so sums of a handful of shards
/// cannot overflow.
fn arb_counters() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 40), 30..=30)
}

/// Per-query entries with exactly-representable dyadic utility sums.
fn arb_per_query() -> impl Strategy<Value = Vec<PerQueryStats>> {
    proptest::collection::vec((0u64..1000, 0u32..4000), 0..6).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(tuples_emitted, quarter_utils)| PerQueryStats {
                tuples_emitted,
                utility_sum: quarter_utils as f64 * 0.25,
            })
            .collect()
    })
}

fn arb_stats() -> impl Strategy<Value = Stats> {
    (arb_counters(), arb_per_query()).prop_map(|(c, per_query)| Stats {
        join_probes: c[0],
        join_results: c[1],
        dom_comparisons: c[2],
        region_comparisons: c[3],
        map_evals: c[4],
        tuples_emitted: c[5],
        regions_processed: c[6],
        regions_pruned: c[7],
        tuples_discarded: c[8],
        region_retries: c[9],
        regions_quarantined: c[10],
        regions_shed: c[11],
        ingest_quarantined: c[12],
        ingest_clamped: c[13],
        build_ticks: c[14],
        probe_ticks: c[15],
        insert_ticks: c[16],
        emit_ticks: c[17],
        build_dom_cmps: c[18],
        insert_dom_cmps: c[19],
        emit_region_cmps: c[20],
        block_kernel_ops: c[21],
        scalar_kernel_ops: c[22],
        arena_tuples: c[23],
        plan_points_interned: c[24],
        sig_partitions_skipped: c[25],
        sig_partitions_rejected: c[26],
        sig_builds: c[27],
        presort_cache_hits: c[28],
        presort_cache_misses: c[29],
        per_query,
    })
}

fn merged(parts: &[Stats]) -> Stats {
    let mut acc = Stats::new();
    for p in parts {
        acc += p.clone();
    }
    acc
}

/// Bit-exact equality including the f64 utility sums.
fn assert_stats_eq(a: &Stats, b: &Stats, label: &str) {
    assert_eq!(a.observable(), b.observable(), "{label}: counters diverged");
    assert_eq!(
        a.block_kernel_ops + a.scalar_kernel_ops,
        b.block_kernel_ops + b.scalar_kernel_ops,
        "{label}: dispatch counters diverged"
    );
    assert_eq!(a.per_query.len(), b.per_query.len(), "{label}: query count");
    for (i, (qa, qb)) in a.per_query.iter().zip(&b.per_query).enumerate() {
        assert_eq!(
            qa.utility_sum.to_bits(),
            qb.utility_sum.to_bits(),
            "{label}: q{i} utility bits diverged"
        );
    }
}

proptest! {
    /// `(a + b) + c == a + (b + c)`: shard folds can be regrouped freely.
    #[test]
    fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        let mut left = a.clone();
        left += b.clone();
        left += c.clone();

        let mut bc = b.clone();
        bc += c.clone();
        let mut right = a.clone();
        right += bc;

        assert_stats_eq(&left, &right, "associativity");
        prop_assert_eq!(left, right);
    }

    /// Any permutation of the shard list merges to the same totals — the
    /// chunk-index merge order is a determinism convention, not a
    /// correctness requirement, for the commutative fields.
    #[test]
    fn merge_is_order_insensitive(
        parts in proptest::collection::vec(arb_stats(), 1..5),
        rot in 0usize..5,
        swap in 0usize..5,
    ) {
        let base = merged(&parts);

        let mut rotated = parts.clone();
        rotated.rotate_left(rot % parts.len());
        assert_stats_eq(&base, &merged(&rotated), "rotation");
        prop_assert_eq!(&base, &merged(&rotated));

        let mut swapped = parts.clone();
        let n = swapped.len();
        swapped.swap(swap % n, (swap + 1) % n);
        assert_stats_eq(&base, &merged(&swapped), "swap");
        prop_assert_eq!(&base, &merged(&swapped));
    }

    /// `Stats::new()` is the merge identity on both sides, including the
    /// per-query growth path (`x += zero` and `zero += x`).
    #[test]
    fn zero_is_identity(x in arb_stats()) {
        let mut left = x.clone();
        left += Stats::new();
        prop_assert_eq!(&left, &x);

        let mut right = Stats::new();
        right += x.clone();
        assert_stats_eq(&right, &x, "identity");
        prop_assert_eq!(&right, &x);
    }
}
