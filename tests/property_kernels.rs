//! Property tests for the flat-layout migration (DESIGN.md §12): the
//! specialized [`DomKernel`]s must agree with the generic `relate_in` /
//! `relate` on *every* input and every [`DomRelation`] outcome, and the
//! store-based skyline entry points must be observationally identical —
//! same results, same `Stats`, same virtual-clock ticks — to the
//! `Vec<Vec<f64>>` adapters they replaced.

use caqe::operators::{
    hash_join_project, hash_join_project_store, skyline_bnl, skyline_bnl_store,
    skyline_bnl_store_scalar, skyline_sfs, skyline_sfs_store, skyline_sfs_store_scalar,
    IncrementalSkyline, JoinSpec, MappingSet,
};
use caqe::types::{
    relate, relate_in, DimMask, DomKernel, DomRelation, PointStore, RankColumns, SimClock, Stats,
};
use proptest::prelude::*;

/// Point sets with stride 2–8, values on a small lattice so ties, equality
/// and both dominance directions all occur.
fn strided_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..=8).prop_flat_map(|d| {
        proptest::collection::vec(
            proptest::collection::vec((0u8..6).prop_map(|v| v as f64), d..=d),
            2..40,
        )
    })
}

/// Point sets on a lattice that includes *both* signed zeros (`total_cmp`
/// tells `-0.0` and `+0.0` apart but `<` does not — the signed-zero note in
/// dominance.rs), plus a duplicated prefix so exact duplicate points occur.
fn tricky_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    const LATTICE: [f64; 5] = [-0.0, 0.0, 1.0, 2.0, 3.0];
    (2usize..=8).prop_flat_map(move |d| {
        proptest::collection::vec(
            proptest::collection::vec((0usize..LATTICE.len()).prop_map(|i| LATTICE[i]), d..=d),
            2..32,
        )
        .prop_flat_map(|pts| {
            let n = pts.len();
            (0usize..=n).prop_map(move |k| {
                let mut all = pts.clone();
                all.extend(pts[..k].iter().cloned());
                all
            })
        })
    })
}

/// A non-empty subspace of `d` dimensions derived from random bits.
fn mask_for(d: usize, bits: u32) -> DimMask {
    let m = bits % ((1 << d) as u32);
    if m == 0 {
        DimMask::full(d)
    } else {
        DimMask(m)
    }
}

proptest! {
    #[test]
    fn kernel_relate_agrees_with_relate_in(points in strided_points(), bits in 0u32..4096) {
        let d = points[0].len();
        let mask = mask_for(d, bits);
        let kernel = DomKernel::new(mask, d);
        let mut seen = [false; 4];
        for a in &points {
            for b in &points {
                let want = relate_in(a, b, mask);
                prop_assert_eq!(kernel.relate(a, b), want);
                seen[match want {
                    DomRelation::Dominates => 0,
                    DomRelation::DominatedBy => 1,
                    DomRelation::Equal => 2,
                    DomRelation::Incomparable => 3,
                }] = true;
                prop_assert_eq!(kernel.dominates(a, b), want == DomRelation::Dominates);
            }
        }
        // Self-relation covers Equal on every run; the lattice values make
        // the other outcomes common, but they need not all occur per case.
        prop_assert!(seen[2]);
    }

    #[test]
    fn full_space_kernel_agrees_with_relate(points in strided_points()) {
        // The stride-specialized full-space fast path must match the
        // Definition 1 relation exactly.
        let d = points[0].len();
        let kernel = DomKernel::new(DimMask::full(d), d);
        for a in &points {
            for b in &points {
                prop_assert_eq!(kernel.relate(a, b), relate(a, b));
            }
        }
    }

    #[test]
    fn kernel_score_matches_mask_walk(points in strided_points(), bits in 0u32..4096) {
        let d = points[0].len();
        let mask = mask_for(d, bits);
        let kernel = DomKernel::new(mask, d);
        for p in &points {
            let want: f64 = mask.iter().map(|k| p[k]).sum();
            prop_assert_eq!(kernel.score(p).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn store_skylines_are_observationally_identical_to_adapters(
        points in strided_points(),
        bits in 0u32..4096,
    ) {
        // The adapters and the flat entry points must agree not just on the
        // skyline but on every observable: comparison counts and ticks.
        let d = points[0].len();
        let mask = mask_for(d, bits);
        let mut store = PointStore::with_capacity(d, points.len());
        for p in &points {
            store.push(p);
        }
        let kernel = DomKernel::new(mask, d);

        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let bnl_old = skyline_bnl(&points, mask, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let bnl_new = skyline_bnl_store(&store, &kernel, &mut c2, &mut s2);
        prop_assert_eq!(bnl_old, bnl_new);
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(c1.ticks(), c2.ticks());

        let mut c3 = SimClock::default();
        let mut s3 = Stats::new();
        let sfs_old = skyline_sfs(&points, mask, &mut c3, &mut s3);
        let mut c4 = SimClock::default();
        let mut s4 = Stats::new();
        let sfs_new = skyline_sfs_store(&store, &kernel, &mut c4, &mut s4);
        prop_assert_eq!(sfs_old, sfs_new);
        prop_assert_eq!(&s3, &s4);
        prop_assert_eq!(c3.ticks(), c4.ticks());
    }

    #[test]
    fn block_verdicts_agree_with_relate_in(points in tricky_points(), bits in 0u32..4096) {
        // The Shape::Block rank-packed and value-packed kernels must return
        // the exact relate_in verdict for every lane — including ties,
        // signed zeros and duplicate points.
        let d = points[0].len();
        let mask = mask_for(d, bits);
        let kernel = DomKernel::new(mask, d);
        let mut store = PointStore::with_capacity(d, points.len());
        for p in &points {
            store.push(p);
        }
        let cols = RankColumns::try_build(&store);
        prop_assert!(cols.is_some(), "NaN-free input must rank");
        // Allowed survivor: asserted Some on the line above.
        #[allow(clippy::unwrap_used)]
        let cols = cols.unwrap();
        let ids: Vec<usize> = (0..points.len()).collect();
        for probe in 0..points.len() {
            for chunk in ids.chunks(64) {
                let bv = kernel.relate_block_ranks(&cols, chunk, probe);
                for (j, &m) in chunk.iter().enumerate() {
                    prop_assert_eq!(
                        bv.relation(j),
                        relate_in(&points[m], &points[probe], mask),
                        "ranks lane {} member {} probe {}", j, m, probe
                    );
                }
            }
            let mut first = 0;
            while first < points.len() {
                let count = (points.len() - first).min(64);
                let bv = kernel.relate_block_rows(store.as_flat(), d, first, count, &points[probe]);
                for j in 0..count {
                    prop_assert_eq!(
                        bv.relation(j),
                        relate_in(&points[first + j], &points[probe], mask),
                        "rows lane {} member {} probe {}", j, first + j, probe
                    );
                }
                first += count;
            }
            // Pre-gathered variant: members and probe packed down to the
            // subspace dimensions (the BNL/SFS window layout).
            let dm = kernel.len();
            let mut packed: Vec<f64> = Vec::with_capacity(points.len() * dm);
            for p in &points {
                kernel.pack_append(p, &mut packed);
            }
            let mut pbuf = Vec::new();
            kernel.pack_into(&points[probe], &mut pbuf);
            let mut first = 0;
            while first < points.len() {
                let count = (points.len() - first).min(64);
                let bv = kernel.relate_block_packed(&packed[first * dm..], count, &pbuf);
                for j in 0..count {
                    prop_assert_eq!(
                        bv.relation(j),
                        relate_in(&points[first + j], &points[probe], mask),
                        "packed lane {} member {} probe {}", j, first + j, probe
                    );
                }
                first += count;
            }
        }
    }

    #[test]
    fn block_skylines_are_observationally_identical_to_scalar(
        points in tricky_points(),
        bits in 0u32..4096,
    ) {
        // The block dispatch in the store entry points and the kept scalar
        // reference loops must agree on every observable: survivors,
        // comparison counts and virtual ticks.
        let d = points[0].len();
        let mask = mask_for(d, bits);
        let mut store = PointStore::with_capacity(d, points.len());
        for p in &points {
            store.push(p);
        }
        let kernel = DomKernel::new(mask, d);

        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let bnl_scalar = skyline_bnl_store_scalar(&store, &kernel, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let bnl_block = skyline_bnl_store(&store, &kernel, &mut c2, &mut s2);
        prop_assert_eq!(bnl_scalar, bnl_block);
        // The forced-scalar twin records no dispatch decision; the entry
        // point records exactly one. Everything *charged* must be equal.
        prop_assert_eq!(s1.block_kernel_ops + s1.scalar_kernel_ops, 0);
        prop_assert_eq!(s2.block_kernel_ops + s2.scalar_kernel_ops, 1);
        prop_assert_eq!(s1.observable(), s2.observable());
        prop_assert_eq!(c1.ticks(), c2.ticks());

        let mut c3 = SimClock::default();
        let mut s3 = Stats::new();
        let sfs_scalar = skyline_sfs_store_scalar(&store, &kernel, &mut c3, &mut s3);
        let mut c4 = SimClock::default();
        let mut s4 = Stats::new();
        let sfs_block = skyline_sfs_store(&store, &kernel, &mut c4, &mut s4);
        prop_assert_eq!(sfs_scalar, sfs_block);
        prop_assert_eq!(s3.block_kernel_ops + s3.scalar_kernel_ops, 0);
        prop_assert_eq!(s4.block_kernel_ops + s4.scalar_kernel_ops, 1);
        prop_assert_eq!(s3.observable(), s4.observable());
        prop_assert_eq!(c3.ticks(), c4.ticks());

        // Incremental maintenance: the dispatching insert and the scalar
        // reference must agree outcome-by-outcome and on the final state.
        let mut inc_a = IncrementalSkyline::new(mask);
        let mut inc_b = IncrementalSkyline::new(mask);
        let mut c5 = SimClock::default();
        let mut s5 = Stats::new();
        let mut c6 = SimClock::default();
        let mut s6 = Stats::new();
        for (i, p) in points.iter().enumerate() {
            let oa = inc_a.insert(i as u64, p, &mut c5, &mut s5);
            let ob = inc_b.insert_scalar(i as u64, p, &mut c6, &mut s6);
            prop_assert_eq!(oa, ob, "insert {} diverged", i);
        }
        prop_assert_eq!(
            s5.block_kernel_ops + s5.scalar_kernel_ops,
            points.len() as u64
        );
        prop_assert_eq!(s6.block_kernel_ops + s6.scalar_kernel_ops, 0);
        prop_assert_eq!(s5.observable(), s6.observable());
        prop_assert_eq!(c5.ticks(), c6.ticks());
        let ea: Vec<_> = inc_a.entries().map(|(t, p)| (t, p.to_vec())).collect();
        let eb: Vec<_> = inc_b.entries().map(|(t, p)| (t, p.to_vec())).collect();
        prop_assert_eq!(ea, eb);
    }

    #[test]
    fn join_store_output_is_observationally_identical_to_adapter(
        n_left in 1usize..30,
        n_right in 1usize..30,
        key_mod in 1u32..6,
    ) {
        use caqe::data::Record;
        let rec = |id: u64, v: f64, key: u32| Record::new(id, vec![v, v + 1.0], vec![key]);
        let left: Vec<Record> = (0..n_left)
            .map(|i| rec(i as u64, i as f64, (i as u32 * 7 + 3) % key_mod))
            .collect();
        let right: Vec<Record> = (0..n_right)
            .map(|i| rec(100 + i as u64, i as f64 * 0.5, (i as u32 * 5 + 1) % key_mod))
            .collect();
        let mapping = MappingSet::mixed(2, 2, 3);
        let spec = JoinSpec::on_column(0);

        let mut c1 = SimClock::default();
        let mut s1 = Stats::new();
        let tuples = hash_join_project(&left, &right, spec, &mapping, &mut c1, &mut s1);
        let mut c2 = SimClock::default();
        let mut s2 = Stats::new();
        let flat = hash_join_project_store(&left, &right, spec, &mapping, &mut c2, &mut s2);

        prop_assert_eq!(tuples.len(), flat.len());
        for (i, o) in tuples.iter().enumerate() {
            prop_assert_eq!(flat.pairs[i], (o.rid, o.tid));
            prop_assert_eq!(flat.store.at(i), o.vals.as_slice());
        }
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(c1.ticks(), c2.ticks());
    }
}

/// All four [`DomRelation`] outcomes, checked deterministically against the
/// kernel on a masked subspace and on the full space.
#[test]
fn kernel_covers_all_four_outcomes() {
    for d in 2usize..=8 {
        let mut a = vec![1.0; d];
        let mut b = vec![1.0; d];
        for mask in [DimMask::full(d), DimMask::from_dims([0, d - 1])] {
            let kernel = DomKernel::new(mask, d);
            // Equal.
            assert_eq!(kernel.relate(&a, &b), DomRelation::Equal);
            assert_eq!(relate_in(&a, &b, mask), DomRelation::Equal);
            // Dominates / DominatedBy.
            a[0] = 0.0;
            assert_eq!(kernel.relate(&a, &b), DomRelation::Dominates);
            assert_eq!(kernel.relate(&b, &a), DomRelation::DominatedBy);
            assert_eq!(relate_in(&a, &b, mask), DomRelation::Dominates);
            // Incomparable.
            b[d - 1] = 0.0;
            assert_eq!(kernel.relate(&a, &b), DomRelation::Incomparable);
            assert_eq!(relate_in(&a, &b, mask), DomRelation::Incomparable);
            a[0] = 1.0;
            b[d - 1] = 1.0;
        }
    }
}
