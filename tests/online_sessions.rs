//! Online workload sessions: dynamic admission/departure with incremental
//! shared-plan maintenance must (a) collapse to the batch engine when the
//! event stream is empty — byte-for-byte against the committed golden
//! trace; (b) stay bit-deterministic at every worker count under churn;
//! (c) produce exactly the result sets a from-scratch batch run over the
//! same effective query set produces, on both the incremental and the
//! full-rebuild admission path.

use caqe::contract::Contract;
use caqe::core::{
    try_run_engine_online_traced, EngineConfig, EventStream, ExecConfig, QuerySpec, RunOutcome,
    SessionEvent, Workload,
};
use caqe::data::{Distribution, TableGenerator};
use caqe::faults::FaultPlan;
use caqe::operators::MappingSet;
use caqe::trace::{to_jsonl, NoopSink, RecordingSink, TraceEvent};
use caqe::types::{DimMask, QueryId};

fn tables(n: usize, dist: Distribution, seed: u64) -> (caqe::data::Table, caqe::data::Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn spec(col: usize, pref: DimMask, priority: f64, contract: Contract) -> QuerySpec {
    QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    }
}

/// The golden-trace workload of `determinism_parallel.rs`.
fn workload() -> Workload {
    Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ])
}

/// A churn stream exercising every session path: an admission into an
/// existing group, an admission that opens a brand-new group (different
/// mapping), and a mid-run departure.
fn churn_events() -> EventStream {
    EventStream::new(vec![
        SessionEvent::Admit {
            at: 500_000,
            spec: spec(0, DimMask::from_dims([0, 3]), 0.7, Contract::LogDecay),
        },
        SessionEvent::Admit {
            at: 2_000_000,
            spec: QuerySpec {
                join_col: 1,
                mapping: MappingSet::concat(2, 2),
                pref: DimMask::from_dims([0, 1]),
                priority: 0.5,
                contract: Contract::SoftDeadline { t_soft: 1.0 },
            },
        },
        SessionEvent::Depart {
            at: 3_000_000,
            query: QueryId(1),
        },
    ])
}

fn assert_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(
        a.virtual_seconds.to_bits(),
        b.virtual_seconds.to_bits(),
        "{label}: virtual clock diverged"
    );
    assert_eq!(a.per_query.len(), b.per_query.len());
    for (qa, qb) in a.per_query.iter().zip(&b.per_query) {
        assert_eq!(
            qa.results, qb.results,
            "{label}: result provenance diverged"
        );
        for (ea, eb) in qa.emissions.iter().zip(&qb.emissions) {
            assert_eq!(
                (ea.0.to_bits(), ea.1.to_bits()),
                (eb.0.to_bits(), eb.1.to_bits()),
                "{label}: emission diverged"
            );
        }
    }
}

fn sorted_results(out: &RunOutcome, q: usize) -> Vec<(u64, u64)> {
    let mut v = out.per_query[q].results.clone();
    v.sort_unstable();
    v
}

#[test]
fn empty_event_stream_reproduces_committed_golden() {
    // The online entry point with no events must be the batch engine,
    // byte-for-byte — same trace bytes as the committed golden.
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default().with_target_cells(1600, 2);
    let mut sink = RecordingSink::new();
    let out = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &EventStream::empty(),
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("clean input");
    assert!(out.total_results() > 0, "degenerate workload");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/caqe_trace.jsonl"
    ))
    .expect("missing golden trace");
    assert_eq!(
        golden,
        to_jsonl(sink.events()),
        "empty-event online run diverged from the batch golden"
    );
}

#[test]
fn churn_trace_is_bit_identical_at_every_parallelism() {
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default().with_target_cells(1600, 2);
    let events = churn_events();
    let mut base_sink = RecordingSink::new();
    let base = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &events,
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut base_sink,
    )
    .expect("clean input");
    let base_jsonl = to_jsonl(base_sink.events());
    let admits = base_sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Admit { .. }))
        .count();
    let departs = base_sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Depart { .. }))
        .count();
    assert_eq!((admits, departs), (2, 1), "session events missing in trace");
    assert_eq!(base.per_query.len(), 5, "expected 3 initial + 2 admitted");
    assert!(
        base.per_query[3].count() > 0,
        "admitted query emitted nothing"
    );
    for threads in [1usize, 2, 4, 8] {
        let mut sink = RecordingSink::new();
        let out = try_run_engine_online_traced(
            "CAQE",
            &r,
            &t,
            &w,
            &events,
            &exec.with_parallelism(Some(threads)),
            &EngineConfig::caqe(),
            0,
            &mut sink,
        )
        .expect("clean input");
        assert_identical(&base, &out, &format!("churn threads={threads}"));
        assert_eq!(
            base_jsonl,
            to_jsonl(sink.events()),
            "churn trace bytes diverged at threads={threads}"
        );
    }
}

#[test]
fn departure_truncates_emissions_and_spares_other_queries() {
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default().with_target_cells(1600, 2);
    let depart_at = 3_000_000u64;
    let events = EventStream::new(vec![SessionEvent::Depart {
        at: depart_at,
        query: QueryId(1),
    }]);
    let mut sink = RecordingSink::new();
    let online = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &events,
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("clean input");
    // No emission for the departed query after the departure was applied.
    let depart_tick = sink
        .events()
        .iter()
        .find_map(|e| match e {
            TraceEvent::Depart { tick, query: 1, .. } => Some(*tick),
            _ => None,
        })
        .expect("depart event missing from trace");
    assert!(depart_tick >= depart_at, "departure applied too early");
    for e in sink.events() {
        if let TraceEvent::Emission { tick, query: 1, .. } = e {
            assert!(
                *tick <= depart_tick,
                "query 1 emitted at {tick} after departing at {depart_tick}"
            );
        }
    }
    // Queries that stayed are unaffected in their final result *sets*: a
    // departed query's sole-provider regions cannot contribute to others.
    let batch = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &EventStream::empty(),
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut NoopSink,
    )
    .expect("clean input");
    for q in [0usize, 2] {
        assert_eq!(
            sorted_results(&online, q),
            sorted_results(&batch, q),
            "query {q} results changed because a peer departed"
        );
    }
}

/// Satellite: incremental admission ≡ batch rebuild. In blocking mode the
/// final per-query skylines are order-independent, so a session that admits
/// a query mid-run must land on exactly the result sets of a from-scratch
/// batch run whose workload already contained it — and the full-rebuild
/// comparison arm must agree with the incremental path bit-for-bit.
#[test]
fn incremental_admission_equals_batch_rebuild() {
    let initial = Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ]);
    let late = spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay);
    let mut batch_specs: Vec<QuerySpec> = initial.queries().to_vec();
    batch_specs.push(late.clone());
    let batch_w = Workload::new(batch_specs);

    // Both blocking profiles: the S-JFSL baseline and a blocking CAQE
    // (coarse pruning + dominance discard exercised under admission).
    let blocking_caqe = EngineConfig {
        progressive_emission: false,
        feedback: false,
        ..EngineConfig::caqe()
    };
    for engine in [EngineConfig::s_jfsl(), blocking_caqe] {
        for seed in [7u64, 41, 4242] {
            for admit_at in [0u64, 900_000, 5_000_000] {
                let (r, t) = tables(400, Distribution::Independent, seed);
                let exec = ExecConfig::default().with_target_cells(400, 8);
                let events = EventStream::new(vec![SessionEvent::Admit {
                    at: admit_at,
                    spec: late.clone(),
                }]);
                let label = format!("policy={:?} seed={seed} admit_at={admit_at}", engine.policy);
                let online = try_run_engine_online_traced(
                    "CAQE",
                    &r,
                    &t,
                    &initial,
                    &events,
                    &exec,
                    &engine,
                    0,
                    &mut NoopSink,
                )
                .expect("clean input");
                let rebuilt = try_run_engine_online_traced(
                    "CAQE",
                    &r,
                    &t,
                    &initial,
                    &events,
                    &exec.with_rebuild_on_admit(true),
                    &engine,
                    0,
                    &mut NoopSink,
                )
                .expect("clean input");
                let batch = try_run_engine_online_traced(
                    "CAQE",
                    &r,
                    &t,
                    &batch_w,
                    &EventStream::empty(),
                    &exec,
                    &engine,
                    0,
                    &mut NoopSink,
                )
                .expect("clean input");
                assert_eq!(online.per_query.len(), 3, "{label}");
                assert!(batch.total_results() > 0, "{label}: degenerate");
                for q in 0..3 {
                    assert_eq!(
                        sorted_results(&online, q),
                        sorted_results(&batch, q),
                        "{label}: query {q} incremental != batch"
                    );
                    assert_eq!(
                        sorted_results(&online, q),
                        sorted_results(&rebuilt, q),
                        "{label}: query {q} incremental != full-rebuild arm"
                    );
                    assert_eq!(
                        online.stats.per_query[q].tuples_emitted,
                        batch.stats.per_query[q].tuples_emitted,
                        "{label}: query {q} per-query emission count diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn admission_faults_delay_but_never_desync() {
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default()
        .with_target_cells(1600, 2)
        .with_faults(FaultPlan::seeded(11).with_admission_faults(1.0));
    let events = churn_events();
    let mut base_sink = RecordingSink::new();
    let base = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &events,
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut base_sink,
    )
    .expect("clean input");
    let admit_faults = base_sink
        .events()
        .iter()
        .filter(
            |e| matches!(e, TraceEvent::FaultInjected { kind, .. } if kind.starts_with("admit")),
        )
        .count();
    assert!(admit_faults > 0, "admission fault hooks never fired");
    // A panicked admission retries with backoff *before* mutating state:
    // the recorded admit tick must sit past the scheduled tick.
    let first_admit = base_sink
        .events()
        .iter()
        .find_map(|e| match e {
            TraceEvent::Admit { tick, .. } => Some(*tick),
            _ => None,
        })
        .expect("no admit event");
    assert!(
        first_admit > 500_000,
        "admit panic backoff did not delay admission (tick {first_admit})"
    );
    let base_jsonl = to_jsonl(base_sink.events());
    for threads in [2usize, 4] {
        let mut sink = RecordingSink::new();
        let out = try_run_engine_online_traced(
            "CAQE",
            &r,
            &t,
            &w,
            &events,
            &exec.with_parallelism(Some(threads)),
            &EngineConfig::caqe(),
            0,
            &mut sink,
        )
        .expect("clean input");
        assert_identical(&base, &out, &format!("admit-faults threads={threads}"));
        assert_eq!(
            base_jsonl,
            to_jsonl(sink.events()),
            "faulted churn trace diverged at threads={threads}"
        );
    }
}

/// Satellite: `BadEventSpec` must render both the offending fragment and
/// a reason a user can act on — CI logs are where these surface.
#[test]
fn bad_event_specs_render_fragment_and_reason() {
    let pool = workload().queries().to_vec();
    for (spec, fragment, reason) in [
        ("admit@500", "admit@500", "expected key=value"),
        ("admit500=0", "admit500=0", "expected kind@tick"),
        ("admit@soon=0", "admit@soon=0", "tick must be a u64"),
        ("admit@500=99", "admit@500=99", "pool index out of range"),
        ("retire@500=0", "retire@500=0", "unknown event kind"),
        ("depart@500=x", "depart@500=x", "query id must be a u16"),
    ] {
        match EventStream::parse(spec, &pool) {
            Err(e @ caqe::types::EngineError::BadEventSpec { .. }) => {
                let rendered = e.to_string();
                assert!(
                    rendered.contains(fragment) && rendered.contains(reason),
                    "spec {spec:?} rendered as {rendered:?}, wanted fragment \
                     {fragment:?} and reason {reason:?}"
                );
            }
            other => panic!("spec {spec:?}: expected BadEventSpec, got {other:?}"),
        }
    }
}

/// Satellite: admitting the same pool spec twice creates two *distinct*
/// live queries — separate ids in the trace, separate result sets — and
/// departing one copy leaves the other emitting.
#[test]
fn duplicate_admit_creates_distinct_live_queries() {
    let w = workload();
    let pool = w.queries().to_vec();
    let (r, t) = tables(400, Distribution::Independent, 7);
    let exec = ExecConfig::default().with_target_cells(400, 8);
    // Same pool entry admitted twice; the first copy (global id 3) departs
    // later, the second (id 4) stays live to the end.
    let events =
        EventStream::parse("admit@100=0,admit@200=0,depart@2000000=3", &pool).expect("valid spec");
    let mut sink = RecordingSink::new();
    let out = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &events,
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("clean input");
    assert_eq!(out.per_query.len(), 5, "3 initial + 2 duplicate admits");
    let admitted: Vec<u16> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Admit { query, .. } => Some(*query),
            _ => None,
        })
        .collect();
    assert_eq!(admitted, vec![3, 4], "duplicate admits must get fresh ids");
    assert!(
        out.per_query[4].count() > 0,
        "surviving duplicate emitted nothing"
    );
    // The two copies ran the same spec: identical final result sets, held
    // independently (departure of one did not drain the other).
    assert_eq!(
        sorted_results(&out, 3),
        sorted_results(&out, 4),
        "duplicate admissions of one spec diverged"
    );
}

/// Satellite: at an equal tick, departures apply before admissions — the
/// trace shows the depart first, and a depart targeting the id being
/// admitted at that very tick is rejected up front by `validate`.
#[test]
fn equal_tick_departs_apply_before_admits() {
    let w = workload();
    let pool = w.queries().to_vec();
    let (r, t) = tables(400, Distribution::Independent, 7);
    let exec = ExecConfig::default().with_target_cells(400, 8);
    let tick = 500_000u64;
    let events =
        EventStream::parse(&format!("admit@{tick}=0,depart@{tick}=1"), &pool).expect("valid spec");
    // The stream itself already orders the depart first.
    assert!(
        matches!(events.events()[0], SessionEvent::Depart { .. }),
        "tie-break must order the depart before the admit"
    );
    let mut sink = RecordingSink::new();
    try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &events,
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("clean input");
    let order: Vec<&'static str> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Admit { .. } => Some("admit"),
            TraceEvent::Depart { .. } => Some("depart"),
            _ => None,
        })
        .collect();
    assert_eq!(
        order,
        vec!["depart", "admit"],
        "equal-tick depart must be applied (and traced) before the admit"
    );
    // Departing the id the admit itself creates at the same tick is
    // unsatisfiable under that ordering: typed error, not a hang.
    let bad =
        EventStream::parse(&format!("admit@{tick}=0,depart@{tick}=3"), &pool).expect("parses fine");
    match bad.validate(w.len()) {
        Err(caqe::types::EngineError::BadEventSpec { reason, .. }) => {
            assert!(
                reason.contains("departures apply before admissions"),
                "reason: {reason}"
            );
        }
        other => panic!("expected BadEventSpec, got {other:?}"),
    }
}

#[test]
fn bad_departures_surface_typed_errors() {
    let w = workload();
    let (r, t) = tables(400, Distribution::Independent, 7);
    let exec = ExecConfig::default().with_target_cells(400, 8);
    for events in [
        // Unknown query id.
        EventStream::new(vec![SessionEvent::Depart {
            at: 0,
            query: QueryId(40),
        }]),
        // Double departure of the same query.
        EventStream::new(vec![
            SessionEvent::Depart {
                at: 0,
                query: QueryId(0),
            },
            SessionEvent::Depart {
                at: 1,
                query: QueryId(0),
            },
        ]),
    ] {
        let res = try_run_engine_online_traced(
            "CAQE",
            &r,
            &t,
            &w,
            &events,
            &exec,
            &EngineConfig::caqe(),
            0,
            &mut NoopSink,
        );
        match res {
            Err(caqe::types::EngineError::BadEventSpec { .. }) => {}
            other => panic!("expected BadEventSpec, got {other:?}"),
        }
    }
}
