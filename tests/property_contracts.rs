//! Property-based tests of the contract machinery and the benefit model's
//! numeric invariants.

use caqe::contract::{update_weights, Contract, EmissionCtx, QueryScore};
use caqe::regions::buchta_estimate;
use proptest::prelude::*;

fn any_table2_contract() -> impl Strategy<Value = Contract> {
    (1usize..=5, 0.5f64..100.0, 0.1f64..20.0)
        .prop_map(|(id, t, interval)| Contract::table2(id, t, interval))
}

proptest! {
    #[test]
    fn table2_utilities_stay_in_unit_interval(
        c in any_table2_contract(),
        ts in 0.0f64..1e6,
        seq in 1u64..10_000,
        total in 1.0f64..1e6,
    ) {
        let u = c.utility(&EmissionCtx::new(ts, seq, total));
        prop_assert!((0.0..=1.0).contains(&u), "utility {u} out of range");
        prop_assert!(u.is_finite());
    }

    #[test]
    fn time_contracts_are_monotone_nonincreasing(
        t_param in 0.5f64..100.0,
        ts1 in 0.0f64..1e4,
        dt in 0.0f64..1e4,
    ) {
        // C1–C3 must never reward lateness.
        for c in [
            Contract::Deadline { t_hard: t_param },
            Contract::LogDecay,
            Contract::SoftDeadline { t_soft: t_param },
        ] {
            let early = c.utility(&EmissionCtx::new(ts1, 1, 100.0));
            let late = c.utility(&EmissionCtx::new(ts1 + dt, 1, 100.0));
            prop_assert!(late <= early + 1e-12, "{c:?} rewarded lateness");
        }
    }

    #[test]
    fn quota_rewards_earlier_sequence_positions(
        interval in 0.1f64..10.0,
        total in 10.0f64..1e4,
        ts in 0.1f64..1e4,
        seq in 1u64..1000,
    ) {
        // At a fixed emission time, being a later result (higher seq) never
        // hurts: its deadline is later or equal.
        let c = Contract::Quota { frac: 0.1, interval };
        let a = c.utility(&EmissionCtx::new(ts, seq, total));
        let b = c.utility(&EmissionCtx::new(ts, seq + 1, total));
        prop_assert!(b >= a - 1e-12);
    }

    #[test]
    fn product_contract_bounded_by_factors(
        a in any_table2_contract(),
        b in any_table2_contract(),
        ts in 0.0f64..1e4,
        seq in 1u64..1000,
    ) {
        let ctx = EmissionCtx::new(ts, seq, 500.0);
        let (ua, ub) = (a.utility(&ctx), b.utility(&ctx));
        let up = Contract::Product(Box::new(a), Box::new(b)).utility(&ctx);
        prop_assert!(up <= ua.min(ub) + 1e-12, "product exceeded a factor");
        prop_assert!(up >= 0.0);
    }

    #[test]
    fn p_score_equals_sum_of_recorded_utilities(
        c in any_table2_contract(),
        times in proptest::collection::vec(0.0f64..1e4, 0..50),
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        let mut tracker = QueryScore::new(c, 100.0);
        let mut sum = 0.0;
        for ts in &sorted {
            sum += tracker.record(*ts);
        }
        prop_assert!((tracker.p_score() - sum).abs() < 1e-9);
        prop_assert_eq!(tracker.count(), sorted.len() as u64);
        if sorted.is_empty() {
            prop_assert_eq!(tracker.final_satisfaction(), 1.0);
        } else {
            let mean = sum / sorted.len() as f64;
            prop_assert!((tracker.final_satisfaction() - mean.clamp(0.0, 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn weight_update_renormalizes_to_mean_one(
        sats in proptest::collection::vec(0.0f64..1.0, 2..12),
    ) {
        // Equation 11 distributes one unit of boost, then the vector is
        // rescaled to mean 1 so absolute weight magnitudes cannot drift
        // across feedback rounds. When all satisfactions are equal the
        // update is an exact no-op (no renormalization either).
        let mut w = vec![1.0; sats.len()];
        update_weights(&mut w, &sats);
        let vmax = sats.iter().copied().fold(f64::MIN, f64::max);
        let spread: f64 = sats.iter().map(|v| vmax - v).sum();
        if spread <= f64::EPSILON {
            prop_assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        } else {
            let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
            prop_assert!((mean - 1.0).abs() < 1e-9, "mean {mean} drifted");
        }
        // Less-satisfied queries never end up with smaller weights.
        for (i, vi) in sats.iter().enumerate() {
            for (j, vj) in sats.iter().enumerate() {
                if vi < vj {
                    prop_assert!(w[i] >= w[j] - 1e-12, "ranking inverted at {i},{j}");
                }
            }
        }
        prop_assert!(w.iter().all(|&x| x.is_finite() && x > 0.0));
    }

    #[test]
    fn buchta_is_monotone_in_m_and_bounded(
        m1 in 1.0f64..1e7,
        factor in 1.0f64..100.0,
        d in 1usize..6,
    ) {
        let a = buchta_estimate(m1, d);
        let b = buchta_estimate(m1 * factor, d);
        prop_assert!(b >= a - 1e-9, "Buchta not monotone in m");
        prop_assert!(a >= 0.0 && a <= m1.max(1.0));
        prop_assert!(a.is_finite());
    }
}
