//! Serial-vs-parallel determinism: the worker-thread knob must never change
//! what the engine computes — per-query result provenance, emission
//! `(timestamp, utility)` pairs, satisfaction, stats counters and the final
//! virtual clock must be bit-identical at every `parallelism` setting.

use caqe::baselines::SJfslStrategy;
use caqe::contract::Contract;
use caqe::core::{CaqeStrategy, ExecConfig, ExecutionStrategy, QuerySpec, RunOutcome, Workload};
use caqe::data::{Distribution, TableGenerator};
use caqe::operators::MappingSet;
use caqe::types::DimMask;

fn tables(n: usize, dist: Distribution, seed: u64) -> (caqe::data::Table, caqe::data::Table) {
    let gen = TableGenerator::new(n, 2, dist)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(seed);
    (gen.generate("R"), gen.generate("T"))
}

fn workload() -> Workload {
    let spec = |col: usize, pref: DimMask, priority: f64, contract: Contract| QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    };
    Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ])
}

/// Asserts every observable of two outcomes matches exactly (f64 included:
/// the virtual clock is integer ticks underneath, so equality is exact).
fn assert_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(
        a.virtual_seconds.to_bits(),
        b.virtual_seconds.to_bits(),
        "{label}: virtual clock diverged"
    );
    assert_eq!(a.per_query.len(), b.per_query.len());
    for (qa, qb) in a.per_query.iter().zip(&b.per_query) {
        assert_eq!(
            qa.results, qb.results,
            "{label}: result provenance diverged"
        );
        assert_eq!(
            qa.emissions.len(),
            qb.emissions.len(),
            "{label}: emission count diverged"
        );
        for (ea, eb) in qa.emissions.iter().zip(&qb.emissions) {
            assert_eq!(
                (ea.0.to_bits(), ea.1.to_bits()),
                (eb.0.to_bits(), eb.1.to_bits()),
                "{label}: emission (ts, utility) diverged"
            );
        }
        assert_eq!(
            qa.satisfaction.to_bits(),
            qb.satisfaction.to_bits(),
            "{label}: satisfaction diverged"
        );
    }
}

#[test]
fn parallelism_never_changes_the_outcome() {
    let w = workload();
    for dist in [Distribution::Independent, Distribution::Anticorrelated] {
        for seed in [41u64, 4242] {
            let (r, t) = tables(500, dist, seed);
            let serial = ExecConfig::default().with_target_cells(500, 8);
            let base = CaqeStrategy.run(&r, &t, &w, &serial);
            assert!(base.total_results() > 0, "degenerate workload");
            for threads in [1usize, 4] {
                let par = serial.with_parallelism(Some(threads));
                let out = CaqeStrategy.run(&r, &t, &w, &par);
                assert_identical(
                    &base,
                    &out,
                    &format!("caqe {dist:?} seed={seed} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn chunked_probe_path_is_bit_identical() {
    // Coarse cells give each region hundreds of R-rows, so the probe phase
    // actually splits into multiple worker chunks (the small-leaf cases
    // above run inline under the min-chunk rule).
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let serial = ExecConfig::default().with_target_cells(1600, 2);
    let base = CaqeStrategy.run(&r, &t, &w, &serial);
    assert!(base.total_results() > 0, "degenerate workload");
    for threads in [2usize, 4, 8] {
        let out = CaqeStrategy.run(&r, &t, &w, &serial.with_parallelism(Some(threads)));
        assert_identical(&base, &out, &format!("chunked threads={threads}"));
    }
}

#[test]
fn trace_is_bit_identical_at_every_parallelism() {
    // The recorded trace — not just the outcome — must be a pure function
    // of the workload: serialize the full event stream and compare bytes
    // across worker counts, including the chunked-probe regime.
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let serial = ExecConfig::default().with_target_cells(1600, 2);
    let mut base_sink = caqe::trace::RecordingSink::new();
    let base = CaqeStrategy.run_traced(&r, &t, &w, &serial, &mut base_sink);
    let base_jsonl = caqe::trace::to_jsonl(base_sink.events());
    assert!(base.total_results() > 0, "degenerate workload");
    assert!(
        base_sink
            .events()
            .iter()
            .any(|e| matches!(e, caqe::trace::TraceEvent::Decision { .. })),
        "trace recorded no scheduler decisions"
    );
    for threads in [1usize, 2, 4, 8] {
        let mut sink = caqe::trace::RecordingSink::new();
        let out = CaqeStrategy.run_traced(
            &r,
            &t,
            &w,
            &serial.with_parallelism(Some(threads)),
            &mut sink,
        );
        assert_identical(&base, &out, &format!("traced threads={threads}"));
        assert_eq!(
            base_jsonl,
            caqe::trace::to_jsonl(sink.events()),
            "trace bytes diverged at threads={threads}"
        );
    }
}

#[test]
fn trace_matches_committed_golden() {
    // Layout-migration regression gate: the JSONL trace of a fixed workload
    // is committed at `tests/golden/caqe_trace.jsonl` (recorded before the
    // flat `PointStore` migration). Any storage or kernel change that
    // perturbs a single comparison, tick or emission shows up as a byte
    // diff here. Refresh intentionally with UPDATE_GOLDEN=1.
    let w = workload();
    let (r, t) = tables(1600, Distribution::Independent, 99);
    let exec = ExecConfig::default().with_target_cells(1600, 2);
    let mut sink = caqe::trace::RecordingSink::new();
    let out = CaqeStrategy.run_traced(&r, &t, &w, &exec, &mut sink);
    assert!(out.total_results() > 0, "degenerate workload");
    let jsonl = caqe::trace::to_jsonl(sink.events());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/caqe_trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).expect("write golden trace");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("missing golden trace");
    assert_eq!(
        golden, jsonl,
        "trace diverged from the committed pre-migration golden"
    );
}

#[test]
fn recording_sink_does_not_perturb_the_run() {
    // Observation must not interfere: a traced run and a no-op-sink run
    // agree on every observable, and tracing costs zero virtual ticks.
    let w = workload();
    let (r, t) = tables(500, Distribution::Independent, 41);
    let exec = ExecConfig::default()
        .with_target_cells(500, 8)
        .with_parallelism(Some(4));
    let plain = CaqeStrategy.run(&r, &t, &w, &exec);
    let mut sink = caqe::trace::RecordingSink::new();
    let traced = CaqeStrategy.run_traced(&r, &t, &w, &exec, &mut sink);
    assert!(!sink.events().is_empty(), "recording sink captured nothing");
    assert_identical(&plain, &traced, "noop-vs-recording");
}

#[test]
fn fifo_baseline_is_thread_invariant_too() {
    // S-JFSL exercises the FIFO cursor path and the blocking pipeline.
    let w = workload();
    let (r, t) = tables(400, Distribution::Correlated, 7);
    let serial = ExecConfig::default().with_target_cells(400, 8);
    let base = SJfslStrategy.run(&r, &t, &w, &serial);
    for threads in [1usize, 4] {
        let out = SJfslStrategy.run(&r, &t, &w, &serial.with_parallelism(Some(threads)));
        assert_identical(&base, &out, &format!("sjfsl threads={threads}"));
    }
}
