//! Acceptance suite for the live observability layer (DESIGN.md §16).
//! Four properties gate the `caqe-obs` work:
//!
//! 1. **Accuracy** — under a chaos plan that sheds, retries and
//!    quarantines, the collector's lifecycle counters exactly equal both
//!    the trace-event counts and the engine's own `Stats` counters.
//! 2. **Determinism** — the metrics snapshot (JSON and Prometheus text)
//!    is byte-identical across worker-thread counts.
//! 3. **Inertness** — wrapping the recording sink in an [`ObserverSink`]
//!    changes neither the outcome nor a single recorded trace byte.
//! 4. **Equivalence** — collecting live during the run, ingesting the
//!    recorded events afterwards, and sharded ingestion at any shard
//!    count all land on the same registry contents.

use caqe::contract::Contract;
use caqe::core::{
    try_run_engine_online_traced, DegradationPolicy, EngineConfig, EventStream, ExecConfig,
    QuerySpec, RunOutcome, Workload,
};
use caqe::data::{Distribution, Table, TableGenerator, ValidationPolicy};
use caqe::faults::{silence_injected_panics, FaultPlan};
use caqe::obs::{names, ObsCollector, ObsConfig, ObserverSink};
use caqe::operators::MappingSet;
use caqe::parallel::Threads;
use caqe::trace::{RecordingSink, TraceEvent};
use caqe::types::{DimMask, SimClock};

fn tables(n: usize) -> (Table, Table) {
    let gen = TableGenerator::new(n, 2, Distribution::Independent)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(42);
    (gen.generate("R"), gen.generate("T"))
}

fn workload() -> Workload {
    let spec = |col: usize, pref: DimMask, priority: f64, contract: Contract| QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    };
    Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ])
}

/// The chaos_engine "everything+shedding" configuration: every fault
/// domain active, quarantine validation, aggressive shedding floor.
fn chaos_exec(n: usize, threads: Option<usize>) -> ExecConfig {
    ExecConfig::default()
        .with_target_cells(n, 4)
        .with_faults(
            FaultPlan::seeded(7)
                .with_panics(0.15)
                .with_spikes(0.1, 8.0)
                .with_estimator_noise(0.2, 4.0)
                .with_corruption(0.02),
        )
        .with_validation(ValidationPolicy::Quarantine)
        .with_degradation(DegradationPolicy {
            sat_floor: 0.9,
            grace_ticks: 10_000,
        })
        .with_parallelism(threads)
}

fn obs_config(w: &Workload) -> ObsConfig {
    let contracts: Vec<Contract> = w.queries().iter().map(|q| q.contract.clone()).collect();
    ObsConfig::from_contracts(
        &contracts,
        SimClock::default().model().ticks_per_second,
        0.5,
    )
}

/// Runs the chaos scenario with a live collector over a recording sink.
fn observed_run(
    r: &Table,
    t: &Table,
    w: &Workload,
    exec: &ExecConfig,
) -> (RunOutcome, RecordingSink, ObsCollector) {
    let mut sink = ObserverSink::new(obs_config(w), RecordingSink::new());
    let out = try_run_engine_online_traced(
        "CAQE",
        r,
        t,
        w,
        &EventStream::empty(),
        exec,
        &EngineConfig::caqe(),
        0,
        &mut sink,
    )
    .expect("chaos run under quarantine never rejects");
    let (recording, collector) = sink.into_parts();
    (out, recording, collector)
}

fn event_count(events: &[TraceEvent], pred: impl Fn(&TraceEvent) -> bool) -> u64 {
    events.iter().filter(|e| pred(e)).count() as u64
}

/// Gate 1: shed/retry/quarantine/emission counters equal the trace-event
/// counts *and* the engine's `Stats`, at one and at four threads.
#[test]
fn lifecycle_counters_match_trace_and_stats() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800);
    for threads in [None, Some(4)] {
        let exec = chaos_exec(800, threads);
        let (out, recording, collector) = observed_run(&r, &t, &w, &exec);
        let events = recording.events();
        let reg = collector.registry();
        let counter = |name: &str| reg.counter(name).unwrap_or(0);

        let sheds = event_count(events, |e| matches!(e, TraceEvent::RegionShed { .. }));
        let retries = event_count(events, |e| matches!(e, TraceEvent::RegionRetry { .. }));
        let quarantines = event_count(events, |e| {
            matches!(e, TraceEvent::RegionQuarantined { .. })
        });
        let emissions = event_count(events, |e| matches!(e, TraceEvent::Emission { .. }));
        let faults = event_count(events, |e| matches!(e, TraceEvent::FaultInjected { .. }));
        assert!(
            sheds > 0 && retries > 0,
            "scenario too tame to exercise the lifecycle counters"
        );

        assert_eq!(counter(names::SHEDS), sheds, "shed counter vs trace");
        assert_eq!(counter(names::RETRIES), retries, "retry counter vs trace");
        assert_eq!(
            counter(names::QUARANTINES),
            quarantines,
            "quarantine counter vs trace"
        );
        assert_eq!(
            counter(names::EMISSIONS),
            emissions,
            "emission counter vs trace"
        );
        assert_eq!(counter(names::FAULTS), faults, "fault counter vs trace");

        assert_eq!(
            counter(names::SHEDS),
            out.stats.regions_shed,
            "shed vs stats"
        );
        assert_eq!(
            counter(names::RETRIES),
            out.stats.region_retries,
            "retry vs stats"
        );
        assert_eq!(
            counter(names::QUARANTINES),
            out.stats.regions_quarantined,
            "quarantine vs stats"
        );
        assert_eq!(
            counter(names::EMISSIONS),
            out.stats.tuples_emitted,
            "emission vs stats"
        );
    }
}

/// Gate 2: the full snapshot — both export formats — is a pure function
/// of the workload, byte-identical at every worker-thread count.
#[test]
fn snapshots_bit_identical_across_threads() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800);
    let snapshot = |threads: Option<usize>| {
        let exec = chaos_exec(800, threads);
        let (out, _, mut collector) = observed_run(&r, &t, &w, &exec);
        collector.ingest_stats(&out.stats);
        (collector.snapshot_json(), collector.snapshot_prometheus())
    };
    let (base_json, base_prom) = snapshot(None);
    for threads in [1usize, 2, 4, 8] {
        let (json, prom) = snapshot(Some(threads));
        assert_eq!(
            base_json, json,
            "JSON snapshot diverged at threads={threads}"
        );
        assert_eq!(
            base_prom, prom,
            "Prometheus snapshot diverged at threads={threads}"
        );
    }
}

/// Gate 3: the observer is invisible — same outcome, same trace bytes as
/// an unwrapped recording sink.
#[test]
fn observer_sink_changes_nothing() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800);
    let exec = chaos_exec(800, Some(2));
    let mut plain = RecordingSink::new();
    let bare = try_run_engine_online_traced(
        "CAQE",
        &r,
        &t,
        &w,
        &EventStream::empty(),
        &exec,
        &EngineConfig::caqe(),
        0,
        &mut plain,
    )
    .expect("chaos run under quarantine never rejects");
    let (observed, recording, _) = observed_run(&r, &t, &w, &exec);

    assert_eq!(bare.stats, observed.stats, "observer changed stats");
    assert_eq!(
        bare.virtual_seconds.to_bits(),
        observed.virtual_seconds.to_bits(),
        "observer moved the virtual clock"
    );
    for (a, b) in bare.per_query.iter().zip(&observed.per_query) {
        assert_eq!(a.results, b.results, "observer changed results");
        assert_eq!(a.emissions, b.emissions, "observer changed emissions");
    }
    assert_eq!(
        caqe::trace::to_jsonl(plain.events()),
        caqe::trace::to_jsonl(recording.events()),
        "observer perturbed the forwarded trace"
    );
}

/// Gate 4: live collection, post-hoc ingestion and sharded ingestion all
/// produce the same registry.
#[test]
fn live_posthoc_and_sharded_ingestion_agree() {
    silence_injected_panics();
    let w = workload();
    let (r, t) = tables(800);
    let exec = chaos_exec(800, Some(2));
    let (_, recording, live) = observed_run(&r, &t, &w, &exec);
    let live_json = live.snapshot_json();

    let mut posthoc = ObsCollector::new(obs_config(&w));
    posthoc.ingest_events(recording.events());
    assert_eq!(
        live_json,
        posthoc.snapshot_json(),
        "post-hoc ingestion diverged from live collection"
    );

    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ObsCollector::new(obs_config(&w));
        sharded.ingest_events_sharded(recording.events(), Threads::exact(shards));
        assert_eq!(
            live_json,
            sharded.snapshot_json(),
            "sharded ingestion diverged at {shards} shard(s)"
        );
    }
}
