//! Warm-start plan persistence: a run restored from the on-disk plan
//! snapshot must be *byte-identical* to a cold start — same trace, same
//! outcome, at every thread count — and every way the file can be wrong
//! (bit flip, truncation, stale tables, future version) must yield a
//! typed error followed by a clean full rebuild, never a partial apply.

use caqe::contract::Contract;
use caqe::core::engine::try_run_engine_online_prepared;
use caqe::core::{
    EngineConfig, EventStream, ExecConfig, PlanError, PreparedPlan, QuerySpec, SchedulingPolicy,
    Workload,
};
use caqe::data::{Distribution, Table, TableGenerator};
use caqe::operators::MappingSet;
use caqe::trace::{to_jsonl, RecordingSink};
use caqe::types::DimMask;
use std::path::PathBuf;

/// The golden-trace fixture of `determinism_parallel.rs`, verbatim.
fn tables() -> (Table, Table) {
    let gen = TableGenerator::new(1600, 2, Distribution::Independent)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(99);
    (gen.generate("R"), gen.generate("T"))
}

fn workload() -> Workload {
    let spec = |col: usize, pref: DimMask, priority: f64, contract: Contract| QuerySpec {
        join_col: col,
        mapping: MappingSet::mixed(2, 2, 4),
        pref,
        priority,
        contract,
    };
    Workload::new(vec![
        spec(
            0,
            DimMask::from_dims([0, 1]),
            0.9,
            Contract::Deadline { t_hard: 0.5 },
        ),
        spec(0, DimMask::from_dims([1, 2]), 0.6, Contract::LogDecay),
        spec(
            1,
            DimMask::from_dims([2, 3]),
            0.4,
            Contract::SoftDeadline { t_soft: 0.3 },
        ),
    ])
}

fn exec() -> ExecConfig {
    ExecConfig::default().with_target_cells(1600, 2)
}

/// Builds and memoizes the plan exactly as the engine will consume it.
fn build_plan(
    r: &Table,
    t: &Table,
    w: &Workload,
    exec: &ExecConfig,
    eng: &EngineConfig,
) -> PreparedPlan {
    let needs_dg =
        eng.progressive_emission || eng.dominance_discard || eng.policy != SchedulingPolicy::Fifo;
    let mut plan = PreparedPlan::build(r, t, exec);
    plan.memoize(w, exec, eng.coarse_pruning, needs_dg, false);
    plan
}

/// One traced engine run, optionally warm-started, serialized to JSONL.
fn run_jsonl(
    r: &Table,
    t: &Table,
    w: &Workload,
    exec: &ExecConfig,
    plan: Option<&PreparedPlan>,
) -> String {
    let mut sink = RecordingSink::new();
    let out = try_run_engine_online_prepared(
        "CAQE",
        r,
        t,
        w,
        &EventStream::empty(),
        exec,
        &EngineConfig::caqe(),
        0,
        plan,
        &mut sink,
    )
    .expect("engine run");
    assert!(out.total_results() > 0, "degenerate workload");
    to_jsonl(sink.events())
}

fn golden() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/caqe_trace.jsonl");
    std::fs::read_to_string(path).expect("missing golden trace")
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("caqe_plan_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

#[test]
fn warm_start_reproduces_the_golden_trace_at_every_parallelism() {
    let (r, t) = tables();
    let w = workload();
    let eng = EngineConfig::caqe();
    let plan = build_plan(&r, &t, &w, &exec(), &eng);

    // Persist and reload through the real on-disk path: the trace the
    // *restored* plan produces is compared, not the in-memory one.
    let path = tmp_path("golden.caqeplan");
    plan.save(&path).expect("save plan");
    let restored = PreparedPlan::load(&path, &r, &t, &exec()).expect("load plan");

    let golden = golden();
    for threads in [1usize, 2, 4, 8] {
        let exec = exec().with_parallelism(Some(threads));
        let warm = run_jsonl(&r, &t, &w, &exec, Some(&restored));
        assert_eq!(
            golden, warm,
            "warm-start trace diverged from the committed golden at threads={threads}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn warm_equals_cold_even_in_memory() {
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let plan = build_plan(&r, &t, &w, &exec, &EngineConfig::caqe());
    let cold = run_jsonl(&r, &t, &w, &exec, None);
    let warm = run_jsonl(&r, &t, &w, &exec, Some(&plan));
    assert_eq!(cold, warm, "warm path must be observationally identical");
}

#[test]
fn bit_flipped_plan_is_rejected_then_rebuilds_cleanly() {
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let plan = build_plan(&r, &t, &w, &exec, &EngineConfig::caqe());
    let text = plan.to_text();

    // Flip one byte in the middle of the body.
    let mid = text.len() / 2;
    let mut bytes = text.into_bytes();
    bytes[mid] = if bytes[mid] == b'3' { b'4' } else { b'3' };
    let path = tmp_path("flipped.caqeplan");
    std::fs::write(&path, &bytes).expect("write corrupt plan");

    match PreparedPlan::load(&path, &r, &t, &exec) {
        Err(PlanError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // The fall-back cold build is untouched by the corrupt file.
    assert_eq!(golden(), run_jsonl(&r, &t, &w, &exec, None));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_plan_is_rejected_then_rebuilds_cleanly() {
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let plan = build_plan(&r, &t, &w, &exec, &EngineConfig::caqe());
    let text = plan.to_text();

    let path = tmp_path("truncated.caqeplan");
    for cut in [text.len() / 3, text.rfind("checksum").expect("footer")] {
        std::fs::write(&path, &text[..cut]).expect("write truncated plan");
        match PreparedPlan::load(&path, &r, &t, &exec) {
            Err(PlanError::Corrupt(_)) => {}
            other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
        }
    }
    assert_eq!(golden(), run_jsonl(&r, &t, &w, &exec, None));
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_table_version_is_rejected_then_rebuilds_cleanly() {
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let plan = build_plan(&r, &t, &w, &exec, &EngineConfig::caqe());
    let path = tmp_path("stale.caqeplan");
    plan.save(&path).expect("save plan");

    // The table "changed" after the plan was written: one value edit.
    let mut recs = r.records().to_vec();
    recs[7].vals[0] += 0.125;
    let r2 = Table::new(r.name(), r.dims(), r.join_cols(), recs);

    match PreparedPlan::load(&path, &r2, &t, &exec) {
        Err(PlanError::Stale {
            what: "table R", ..
        }) => {}
        other => panic!("expected Stale table R, got {other:?}"),
    }
    // A cold run over the *original* tables still matches the golden.
    assert_eq!(golden(), run_jsonl(&r, &t, &w, &exec, None));
    std::fs::remove_file(&path).ok();
}

#[test]
fn future_version_is_rejected_then_rebuilds_cleanly() {
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let plan = build_plan(&r, &t, &w, &exec, &EngineConfig::caqe());
    let future = plan.to_text().replacen("caqe-plan v1", "caqe-plan v7", 1);
    let path = tmp_path("future.caqeplan");
    std::fs::write(&path, future).expect("write future plan");

    match PreparedPlan::load(&path, &r, &t, &exec) {
        Err(PlanError::Version { found: 7 }) => {}
        other => panic!("expected Version, got {other:?}"),
    }
    assert_eq!(golden(), run_jsonl(&r, &t, &w, &exec, None));
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_plan_is_silently_ignored_by_the_engine() {
    // The engine's warm-start gate: a plan built for *different tables*
    // passed in anyway must be ignored (fingerprint mismatch), and the
    // run must still match the golden — warm-start can be wrong about
    // freshness, but never wrong about results.
    let (r, t) = tables();
    let w = workload();
    let exec = exec();
    let other_gen = TableGenerator::new(400, 2, Distribution::Independent)
        .with_selectivities(&[0.05, 0.1])
        .with_seed(5);
    let (r2, t2) = (other_gen.generate("R"), other_gen.generate("T"));
    let wrong_plan = build_plan(&r2, &t2, &w, &exec, &EngineConfig::caqe());
    assert_eq!(golden(), run_jsonl(&r, &t, &w, &exec, Some(&wrong_plan)));
}
